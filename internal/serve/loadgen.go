package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
)

// SynthSnapshot synthesizes one interval of plausible tenant telemetry:
// a per-tenant phase-shifted sinusoidal load swing wide enough that the
// auto-scaler changes containers over the stream. Deterministic in
// (tenant, i) alone, so load-generated runs are reproducible.
func SynthSnapshot(tenant string, i int) telemetry.Snapshot {
	phase := float64(len(tenant)%7) * 0.9
	load := 80 + 60*math.Sin(float64(i)/5+phase)
	util := 0.3 + 0.4*(load/140)
	return telemetry.Snapshot{
		Interval:        i,
		Container:       "B2",
		Step:            2,
		Cost:            2,
		Utilization:     resource.Vector{util, util * 0.8, util * 0.5, util * 0.3},
		UtilizationPeak: resource.Vector{util * 1.2, util, util * 0.7, util * 0.4},
		WaitMs: [telemetry.NumWaitClasses]float64{
			load * 12, load * 5, load * 3, load, 40, 10, 5,
		},
		AvgLatencyMs:   20 + load/4,
		P95LatencyMs:   60 + load,
		Transactions:   load * 300,
		OfferedRPS:     load,
		MemoryUsedMB:   700 + load,
		PhysicalReads:  load * 8,
		PhysicalWrites: load * 2,
	}
}

// LoadSpec configures RunLoad: Tenants concurrent streams, each sending
// Snapshots sequential intervals of synthetic telemetry in batches of
// Batch snapshots per POST.
type LoadSpec struct {
	// BaseURL is the daemon's root URL (e.g. http://127.0.0.1:8080).
	BaseURL string
	// Tenants is the number of tenant streams.
	Tenants int
	// Snapshots is the number of intervals each tenant sends.
	Snapshots int
	// Batch is the number of snapshots per request (0 = 50).
	Batch int
	// Concurrency bounds the streams in flight at once (0 = Tenants,
	// capped at 512 to stay within default socket limits).
	Concurrency int
	// MaxRetries bounds how often one batch is re-sent after a 429 or 503
	// before it is counted as an error (0 = DefaultMaxRetries; < 0
	// disables retrying). Retries honor the server's Retry-After header,
	// capped at maxRetrySleep.
	MaxRetries int
	// Sleep is the retry backoff sleeper (nil = time.Sleep). Injectable
	// so retry tests do not wait wall-clock.
	Sleep func(time.Duration)
	// Client is the HTTP client (nil = a pooled default).
	Client *http.Client
}

// DefaultMaxRetries is the default per-batch retry budget for 429/503
// responses.
const DefaultMaxRetries = 4

// maxRetrySleep caps how long one Retry-After header can stall a stream —
// a load generator should back off, not hibernate.
const maxRetrySleep = 2 * time.Second

// LoadResult is RunLoad's aggregate outcome.
type LoadResult struct {
	// Tenants and Snapshots echo the spec.
	Tenants   int   `json:"tenants"`
	Snapshots int64 `json:"snapshots"`
	// Accepted is the snapshots the server acknowledged as newly accepted;
	// Duplicates counts re-sends of already-decided intervals (a resumed or
	// retried stream is completed by Accepted and Duplicates together).
	Accepted   int64 `json:"accepted"`
	Duplicates int64 `json:"duplicates"`
	// Requests is the POSTs issued; Errors counts transport failures and
	// responses that stayed failed after the retry budget (a 429/503 that
	// a retry resolved is not an error).
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// Throttled and Degraded count 429 and 503 responses (including ones
	// later resolved by retry); Retries counts the re-sends they caused.
	Throttled int64 `json:"throttled"`
	Degraded  int64 `json:"degraded"`
	Retries   int64 `json:"retries"`
	// Acked is the ground truth for the crash-consistency checker: per
	// tenant, the highest NextSeq any 200/429 reply carried. Every
	// interval below it was durably decided when the reply was written,
	// so VerifyLedgers can assert none of them is ever lost.
	Acked map[string]int `json:"acked,omitempty"`
	// DurationSeconds is the wall-clock of the whole run.
	DurationSeconds float64 `json:"duration_seconds"`
	// SnapshotsPerSec is the sustained ingest throughput.
	SnapshotsPerSec float64 `json:"snapshots_per_sec"`
	// RequestsPerSec is the sustained request throughput.
	RequestsPerSec float64 `json:"requests_per_sec"`
}

// RunLoad drives concurrent tenant telemetry streams against a running
// daemon and reports the sustained ingest throughput. The first transport
// error cancels the run; server-side rejections are counted, not fatal.
func RunLoad(ctx context.Context, spec LoadSpec) (LoadResult, error) {
	if spec.Tenants <= 0 || spec.Snapshots <= 0 {
		return LoadResult{}, fmt.Errorf("serve: load spec needs Tenants and Snapshots > 0")
	}
	batch := spec.Batch
	if batch <= 0 {
		batch = 50
	}
	conc := spec.Concurrency
	if conc <= 0 || conc > spec.Tenants {
		conc = spec.Tenants
	}
	if conc > 512 {
		conc = 512
	}
	client := spec.Client
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        conc + 16,
				MaxIdleConnsPerHost: conc + 16,
			},
		}
	}

	maxRetries := spec.MaxRetries
	if maxRetries == 0 {
		maxRetries = DefaultMaxRetries
	}
	if maxRetries < 0 {
		maxRetries = 0
	}
	sleep := spec.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		accepted, duplicates, requests, errors int64
		throttled, degraded, retries           int64
		firstErr                               error
		errOnce                                sync.Once
	)
	ackMu := sync.Mutex{}
	acked := make(map[string]int)
	recordAck := func(id string, nextSeq int) {
		ackMu.Lock()
		if nextSeq > acked[id] {
			acked[id] = nextSeq
		}
		ackMu.Unlock()
	}
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tn := range work {
				id := fmt.Sprintf("t%05d", tn)
				url := spec.BaseURL + "/v1/tenants/" + id + "/telemetry"
				for off := 0; off < spec.Snapshots; off += batch {
					if ctx.Err() != nil {
						return
					}
					n := batch
					if off+n > spec.Snapshots {
						n = spec.Snapshots - off
					}
					body := struct {
						Batch []wireSnapshot `json:"batch"`
					}{Batch: make([]wireSnapshot, n)}
					for i := 0; i < n; i++ {
						body.Batch[i] = wireSnapshot{Snapshot: SynthSnapshot(id, off+i)}
					}
					buf, err := json.Marshal(body)
					if err != nil {
						fail(err)
						return
					}
					// One batch, with a bounded retry budget for clean
					// refusals (429 backpressure, 503 degraded storage). The
					// server's idempotency makes re-sending the whole batch
					// safe: decided intervals come back as duplicates.
					for attempt := 0; ; attempt++ {
						req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(buf))
						if err != nil {
							fail(err)
							return
						}
						req.Header.Set("Content-Type", "application/json")
						resp, err := client.Do(req)
						if err != nil {
							if ctx.Err() == nil {
								fail(err)
							}
							return
						}
						atomic.AddInt64(&requests, 1)
						var reply ingestReply
						decErr := json.NewDecoder(resp.Body).Decode(&reply)
						retryAfter := resp.Header.Get("Retry-After")
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						switch {
						case decErr == nil && resp.StatusCode == http.StatusOK:
							atomic.AddInt64(&accepted, int64(reply.Accepted))
							atomic.AddInt64(&duplicates, int64(reply.Duplicates))
							recordAck(id, reply.NextSeq)
						case decErr == nil && (resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable):
							if resp.StatusCode == http.StatusTooManyRequests {
								atomic.AddInt64(&throttled, 1)
								// A 429's counts are authoritative: what was
								// accepted before the bucket emptied is durable.
								atomic.AddInt64(&accepted, int64(reply.Accepted))
								atomic.AddInt64(&duplicates, int64(reply.Duplicates))
								recordAck(id, reply.NextSeq)
							} else {
								// A 503 acknowledges nothing — by contract the
								// server never acks what it could not persist.
								atomic.AddInt64(&degraded, 1)
							}
							if attempt < maxRetries {
								atomic.AddInt64(&retries, 1)
								sleep(retryDelay(retryAfter))
								if ctx.Err() != nil {
									return
								}
								continue
							}
							atomic.AddInt64(&errors, 1)
						default:
							atomic.AddInt64(&errors, 1)
						}
						break
					}
				}
			}
		}()
	}

	start := time.Now()
	for tn := 0; tn < spec.Tenants; tn++ {
		select {
		case work <- tn:
		case <-ctx.Done():
			tn = spec.Tenants
		}
	}
	close(work)
	wg.Wait()
	dur := time.Since(start)

	res := LoadResult{
		Tenants:         spec.Tenants,
		Snapshots:       int64(spec.Tenants) * int64(spec.Snapshots),
		Accepted:        accepted,
		Duplicates:      duplicates,
		Requests:        requests,
		Errors:          errors,
		Throttled:       throttled,
		Degraded:        degraded,
		Retries:         retries,
		Acked:           acked,
		DurationSeconds: dur.Seconds(),
	}
	if s := dur.Seconds(); s > 0 {
		res.SnapshotsPerSec = float64(accepted) / s
		res.RequestsPerSec = float64(requests) / s
	}
	return res, firstErr
}

// retryDelay resolves a Retry-After header into a bounded backoff.
func retryDelay(header string) time.Duration {
	d := time.Second
	if n, err := strconv.Atoi(strings.TrimSpace(header)); err == nil && n > 0 {
		d = time.Duration(n) * time.Second
	}
	if d > maxRetrySleep {
		d = maxRetrySleep
	}
	return d
}
