package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"daasscale/internal/diskfaults"
	"daasscale/internal/ledger"
)

// fakeClock is an injectable, manually-advanced clock for probe pacing
// and rate-limit tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// faultServer builds a server on a crash-simulating MemFS behind a fault
// injector, with a fake clock.
func faultServer(t *testing.T, mutate func(*Config)) (*Server, *diskfaults.MemFS, *diskfaults.FS, *fakeClock) {
	t.Helper()
	mem := diskfaults.NewMemFS()
	ffs := diskfaults.Wrap(mem, diskfaults.Plan{})
	clock := newFakeClock()
	cfg := Config{
		LedgerDir:     "/led",
		Seed:          7,
		FS:            ffs,
		ProbeInterval: 5 * time.Second,
		Now:           clock.Now,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, mem, ffs, clock
}

// postRaw sends one ingest request and returns the raw recorder, for
// header assertions.
func postRaw(t *testing.T, s *Server, tenant string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/tenants/"+tenant+"/telemetry", bytes.NewReader(buf))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func ingestOne(t *testing.T, s *Server, tenant string, seq int) *httptest.ResponseRecorder {
	t.Helper()
	return postRaw(t, s, tenant, map[string]interface{}{"snapshot": snapFor(seq)})
}

func decodeReply(t *testing.T, w *httptest.ResponseRecorder) ingestReply {
	t.Helper()
	var reply ingestReply
	if err := json.Unmarshal(w.Body.Bytes(), &reply); err != nil {
		t.Fatalf("bad reply %q: %v", w.Body.String(), err)
	}
	return reply
}

// TestServeDegradedModeRefusesAndRecovers is the tentpole's serving
// contract end to end: a storage fault turns into a clean 503 with
// Retry-After (never a 200 whose data is lost), health and metrics
// report the quarantine, reads still serve the durable record, and a
// successful probe re-admits the tenant.
func TestServeDegradedModeRefusesAndRecovers(t *testing.T) {
	s, _, ffs, clock := faultServer(t, nil)
	defer s.Close()

	for i := 0; i < 5; i++ {
		if w := ingestOne(t, s, "acme", i); w.Code != http.StatusOK {
			t.Fatalf("clean ingest %d: status %d", i, w.Code)
		}
	}

	// Break the disk and send interval 5.
	ffs.SetPlan(diskfaults.Plan{Kind: diskfaults.KindEIO, Start: ffs.Ops(), Count: -1})
	w := ingestOne(t, s, "acme", 5)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("faulted ingest: status %d, want 503 (body %s)", w.Code, w.Body.String())
	}
	if got := w.Header().Get("Retry-After"); got != "5" {
		t.Fatalf("degraded Retry-After = %q, want %q", got, "5")
	}
	if reply := decodeReply(t, w); reply.NextSeq != 0 || reply.Accepted != 0 {
		t.Fatalf("degraded reply acknowledged work: %+v", reply)
	}

	// Still degraded on an immediate retry (no probe before the interval
	// elapses), even though the disk is healthy again.
	ffs.SetPlan(diskfaults.Plan{})
	if w := ingestOne(t, s, "acme", 5); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("immediate retry: status %d, want 503", w.Code)
	}

	// Health and metrics report the quarantine.
	var health struct {
		Status      string   `json:"status"`
		Quarantined int      `json:"quarantined"`
		Tenants     []string `json:"quarantined_tenants"`
	}
	if code := get(t, s, "/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if health.Status != "degraded" || health.Quarantined != 1 || len(health.Tenants) != 1 || health.Tenants[0] != "acme" {
		t.Fatalf("healthz while degraded: %+v", health)
	}
	var ms MetricsSnapshot
	get(t, s, "/metrics", &ms)
	if ms.Storage.Quarantines != 1 || ms.Storage.QuarantinedNow != 1 || ms.Storage.Errors == 0 {
		t.Fatalf("storage metrics while degraded: %+v", ms.Storage)
	}

	// Reads still answer, correctly, from the durable record.
	var decs decisionsReply
	if code := get(t, s, "/v1/tenants/acme/decisions", &decs); code != http.StatusOK {
		t.Fatalf("decisions while degraded: status %d", code)
	}
	if len(decs.Decisions) != 5 {
		t.Fatalf("degraded decisions = %d, want the 5 durable ones", len(decs.Decisions))
	}

	// After the probe interval the next ingest probes, recovers, and is
	// accepted — the watermark resumes exactly where durability stopped.
	clock.advance(6 * time.Second)
	w = ingestOne(t, s, "acme", 5)
	if w.Code != http.StatusOK {
		t.Fatalf("post-recovery ingest: status %d (body %s)", w.Code, w.Body.String())
	}
	if reply := decodeReply(t, w); reply.Accepted != 1 || reply.NextSeq != 6 {
		t.Fatalf("post-recovery reply: %+v", reply)
	}
	for i := 6; i < 10; i++ {
		if w := ingestOne(t, s, "acme", i); w.Code != http.StatusOK {
			t.Fatalf("post-recovery ingest %d: status %d", i, w.Code)
		}
	}

	get(t, s, "/metrics", &ms)
	if ms.Storage.Recoveries != 1 || ms.Storage.QuarantinedNow != 0 || ms.Ledger.Seals != 1 {
		t.Fatalf("storage metrics after recovery: %+v ledger %+v", ms.Storage, ms.Ledger)
	}
	get(t, s, "/healthz", &health)
	if health.Status != "ok" || health.Quarantined != 0 {
		t.Fatalf("healthz after recovery: %+v", health)
	}

	// The full stream — across the sealed segment — verifies.
	checks, err := VerifyLedgers(ffs, "/led", map[string]int{"acme": 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != 1 || checks[0].Decisions != 10 || checks[0].Segments != 2 {
		t.Fatalf("verify: %+v", checks)
	}
}

// TestServeQuarantinedDrainDoesNotHangOrAck is the SIGTERM-drain
// satellite: Close with a quarantined tenant must return promptly, must
// not step the poisoned pipeline, and must not make anything undurable
// look acknowledged.
func TestServeQuarantinedDrainDoesNotHangOrAck(t *testing.T) {
	s, _, ffs, _ := faultServer(t, func(c *Config) { c.ReorderWindow = 8 })

	for i := 0; i < 3; i++ {
		if w := ingestOne(t, s, "acme", i); w.Code != http.StatusOK {
			t.Fatalf("ingest %d: status %d", i, w.Code)
		}
	}
	// Park future snapshots in the reorder buffer (seq 3 missing).
	if w := postRaw(t, s, "acme", map[string]interface{}{"batch": []wireSnapshot{
		{Snapshot: snapFor(4)}, {Snapshot: snapFor(5)},
	}}); w.Code != http.StatusOK {
		t.Fatalf("buffering: status %d", w.Code)
	}
	// Poison on the gap fill.
	ffs.SetPlan(diskfaults.Plan{Kind: diskfaults.KindEIO, Start: ffs.Ops(), Count: -1})
	if w := ingestOne(t, s, "acme", 3); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("faulted ingest: status %d, want 503", w.Code)
	}

	// Drain with the disk still broken; must complete promptly and clean.
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close with quarantined tenant: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on a quarantined tenant")
	}

	// Nothing past the durable prefix was acked or written: the ledger
	// holds exactly the three 200-acknowledged decisions.
	ffs.SetPlan(diskfaults.Plan{})
	checks, err := VerifyLedgers(ffs, "/led", map[string]int{"acme": 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != 1 || checks[0].Decisions != 3 {
		t.Fatalf("verify after quarantined drain: %+v", checks)
	}
}

// TestServeResumeAcrossSealedSegments restarts the daemon over a ledger
// that was rotated by a recovery and checks the watermark and decision
// stream span the seal boundary.
func TestServeResumeAcrossSealedSegments(t *testing.T) {
	s, mem, ffs, clock := faultServer(t, nil)
	for i := 0; i < 4; i++ {
		if w := ingestOne(t, s, "acme", i); w.Code != http.StatusOK {
			t.Fatalf("ingest %d: status %d", i, w.Code)
		}
	}
	ffs.SetPlan(diskfaults.Plan{Kind: diskfaults.KindEIO, Start: ffs.Ops(), Count: 1})
	if w := ingestOne(t, s, "acme", 4); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("faulted ingest: status %d", w.Code)
	}
	clock.advance(6 * time.Second)
	if w := ingestOne(t, s, "acme", 4); w.Code != http.StatusOK {
		t.Fatalf("recovered ingest: status %d", w.Code)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Fresh daemon, same (now multi-segment) storage.
	clock2 := newFakeClock()
	s2, err := New(Config{LedgerDir: "/led", Seed: 7, FS: ffs, Now: clock2.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	w := ingestOne(t, s2, "acme", 4)
	if reply := decodeReply(t, w); w.Code != http.StatusOK || reply.Duplicates != 1 {
		t.Fatalf("resumed duplicate: status %d reply %+v", w.Code, reply)
	}
	w = ingestOne(t, s2, "acme", 5)
	if reply := decodeReply(t, w); w.Code != http.StatusOK || reply.NextSeq != 6 {
		t.Fatalf("resumed accept: status %d reply %+v", w.Code, reply)
	}
	var decs decisionsReply
	get(t, s2, "/v1/tenants/acme/decisions", &decs)
	if len(decs.Decisions) != 6 {
		t.Fatalf("resumed decisions = %d, want 6", len(decs.Decisions))
	}
	_ = mem
}

// TestRetryAfter429FromBucket pins the satellite: the 429's Retry-After
// is derived from the token bucket's actual refill time.
func TestRetryAfter429FromBucket(t *testing.T) {
	clock := newFakeClock()
	s := newTestServer(t, func(c *Config) {
		c.RatePerSec = 0.25 // one token per 4s: refill clearly > 1s
		c.Burst = 2
		c.Now = clock.Now
	})
	defer s.Close()

	w := postRaw(t, s, "acme", map[string]interface{}{"batch": []wireSnapshot{
		{Snapshot: snapFor(0)}, {Snapshot: snapFor(1)}, {Snapshot: snapFor(2)},
	}})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", w.Code)
	}
	ra, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || ra != 4 {
		t.Fatalf("Retry-After = %q, want \"4\" (1 token at 0.25/s)", w.Header().Get("Retry-After"))
	}
	reply := decodeReply(t, w)
	if reply.Accepted != 2 || reply.RateLimited != 1 || reply.NextSeq != 2 || reply.RetryAfterSec != 4 {
		t.Fatalf("429 reply: %+v", reply)
	}
	// The 429's NextSeq is an authoritative ack: both accepted snapshots
	// are durable.
	log, err := ledger.Replay(s.cfg.LedgerDir + "/acme.ledger")
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Decisions()) != 2 {
		t.Fatalf("durable decisions after 429 = %d, want 2", len(log.Decisions()))
	}
}

// TestRunLoadHonorsRetryAfter drives RunLoad against a stub that refuses
// twice (429 then 503, both with Retry-After) before accepting, and
// checks the retries happen with the advertised (capped) backoff.
func TestRunLoadHonorsRetryAfter(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		switch n {
		case 1:
			w.Header().Set("Retry-After", "3") // capped to maxRetrySleep
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(ingestReply{Tenant: "t00000", ingestCounts: ingestCounts{RateLimited: 1, RetryAfterSec: 3}})
		case 2:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(ingestReply{Tenant: "t00000", Error: "degraded"})
		default:
			json.NewEncoder(w).Encode(ingestReply{Tenant: "t00000", ingestCounts: ingestCounts{Accepted: 5, NextSeq: 5}})
		}
	}))
	defer srv.Close()

	var slept []time.Duration
	res, err := RunLoad(context.Background(), LoadSpec{
		BaseURL:   srv.URL,
		Tenants:   1,
		Snapshots: 5,
		Batch:     5,
		Sleep: func(d time.Duration) {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 5 || res.Errors != 0 || res.Throttled != 1 || res.Degraded != 1 || res.Retries != 2 {
		t.Fatalf("result: %+v", res)
	}
	if res.Acked["t00000"] != 5 {
		t.Fatalf("acked: %+v", res.Acked)
	}
	if len(slept) != 2 || slept[0] != maxRetrySleep || slept[1] != time.Second {
		t.Fatalf("backoffs: %v, want [%v %v]", slept, maxRetrySleep, time.Second)
	}
}

// TestRunLoadGivesUpAfterRetryBudget pins the bounded-retry contract: a
// permanently degraded server costs one error per batch, not a hang.
func TestRunLoadGivesUpAfterRetryBudget(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(ingestReply{Error: "degraded"})
	}))
	defer srv.Close()

	res, err := RunLoad(context.Background(), LoadSpec{
		BaseURL:    srv.URL,
		Tenants:    1,
		Snapshots:  4,
		Batch:      4,
		MaxRetries: 2,
		Sleep:      func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 1 || res.Retries != 2 || res.Degraded != 3 || res.Accepted != 0 {
		t.Fatalf("result: %+v", res)
	}
	if len(res.Acked) != 0 {
		t.Fatalf("permanently degraded run acked something: %+v", res.Acked)
	}
}
