package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"daasscale/internal/ledger"
	"daasscale/internal/loop"
	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
)

// snapFor synthesizes one interval of plausible telemetry: a sinusoidal
// load swing wide enough that the auto-scaler actually changes containers
// over the stream. Deterministic in i alone, so every test (and both
// sides of a determinism comparison) sees the same stream.
func snapFor(i int) telemetry.Snapshot {
	load := 80 + 60*math.Sin(float64(i)/5)
	util := 0.3 + 0.4*(load/140)
	return telemetry.Snapshot{
		Interval:        i,
		Container:       "B2",
		Step:            2,
		Cost:            2,
		Utilization:     resource.Vector{util, util * 0.8, util * 0.5, util * 0.3},
		UtilizationPeak: resource.Vector{util * 1.2, util, util * 0.7, util * 0.4},
		WaitMs: [telemetry.NumWaitClasses]float64{
			load * 12, load * 5, load * 3, load, 40, 10, 5,
		},
		AvgLatencyMs:   20 + load/4,
		P95LatencyMs:   60 + load,
		Transactions:   load * 300,
		OfferedRPS:     load,
		MemoryUsedMB:   700 + load,
		PhysicalReads:  load * 8,
		PhysicalWrites: load * 2,
	}
}

func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{LedgerDir: t.TempDir(), Seed: 7}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// post sends one ingest request and decodes the reply.
func post(t *testing.T, s *Server, tenant string, body interface{}) (ingestReply, int) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/tenants/"+tenant+"/telemetry", bytes.NewReader(buf))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	var reply ingestReply
	if err := json.Unmarshal(w.Body.Bytes(), &reply); err != nil {
		t.Fatalf("bad ingest reply %q: %v", w.Body.String(), err)
	}
	return reply, w.Code
}

func postSnaps(t *testing.T, s *Server, tenant string, snaps ...telemetry.Snapshot) ingestReply {
	t.Helper()
	batch := make([]wireSnapshot, len(snaps))
	for i, sn := range snaps {
		batch[i] = wireSnapshot{Snapshot: sn}
	}
	reply, code := post(t, s, tenant, map[string]interface{}{"batch": batch})
	if code != http.StatusOK {
		t.Fatalf("ingest status %d (reply %+v)", code, reply)
	}
	return reply
}

func get(t *testing.T, s *Server, path string, out interface{}) int {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if out != nil && w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("bad reply %q: %v", w.Body.String(), err)
		}
	}
	return w.Code
}

func TestServeIngestAndQuery(t *testing.T) {
	s := newTestServer(t, nil)
	defer s.Close()

	const n = 30
	for i := 0; i < n; i++ {
		reply := postSnaps(t, s, "acme", snapFor(i))
		if reply.Accepted != 1 || reply.NextSeq != i+1 {
			t.Fatalf("interval %d: reply %+v", i, reply)
		}
	}

	var decs decisionsReply
	if code := get(t, s, "/v1/tenants/acme/decisions", &decs); code != http.StatusOK {
		t.Fatalf("decisions status %d", code)
	}
	if len(decs.Decisions) != n {
		t.Fatalf("got %d decisions, want %d", len(decs.Decisions), n)
	}
	for i, d := range decs.Decisions {
		if d.Interval != i || d.Tenant != "acme" || !d.Observed {
			t.Fatalf("decision %d: %+v", i, d)
		}
	}

	// since/limit slicing.
	var tail decisionsReply
	get(t, s, "/v1/tenants/acme/decisions?since=25", &tail)
	if len(tail.Decisions) != 5 || tail.Decisions[0].Interval != 25 {
		t.Fatalf("since=25: %+v", tail.Decisions)
	}
	var last decisionsReply
	get(t, s, "/v1/tenants/acme/decisions?limit=3", &last)
	if len(last.Decisions) != 3 || last.Decisions[0].Interval != 27 {
		t.Fatalf("limit=3: %+v", last.Decisions)
	}

	var bill billReply
	if code := get(t, s, "/v1/tenants/acme/bill", &bill); code != http.StatusOK {
		t.Fatalf("bill status %d", code)
	}
	if len(bill.LineItems) != n {
		t.Fatalf("got %d line items, want %d", len(bill.LineItems), n)
	}
	wantCost := 0.0
	for i := 0; i < n; i++ {
		wantCost += snapFor(i).Cost
	}
	if math.Abs(bill.TotalCost-wantCost) > 1e-9 {
		t.Fatalf("bill total %v, want %v", bill.TotalCost, wantCost)
	}

	var health struct {
		Status  string `json:"status"`
		Tenants int    `json:"tenants"`
	}
	get(t, s, "/healthz", &health)
	if health.Status != "ok" || health.Tenants != 1 {
		t.Fatalf("healthz %+v", health)
	}

	var m MetricsSnapshot
	get(t, s, "/metrics", &m)
	if m.IngestedSnapshots != n || m.Decisions != n || m.Ledger.Records != 2*n {
		t.Fatalf("metrics %+v", m)
	}
	if m.DecisionLatency.Count != n || m.DecisionLatency.P95Ms < 0 {
		t.Fatalf("decision latency %+v", m.DecisionLatency)
	}
}

func TestServeIdempotency(t *testing.T) {
	s := newTestServer(t, nil)
	defer s.Close()

	for i := 0; i < 10; i++ {
		postSnaps(t, s, "a", snapFor(i))
	}
	// Resend the whole prefix, plus a duplicate inside one batch.
	reply := postSnaps(t, s, "a", snapFor(3), snapFor(3), snapFor(7))
	if reply.Accepted != 0 || reply.Duplicates != 3 || reply.NextSeq != 10 {
		t.Fatalf("resend reply %+v", reply)
	}
	// A duplicate of a buffered future snapshot is also a no-op.
	r1 := postSnaps(t, s, "a", snapFor(12))
	if r1.Buffered != 1 {
		t.Fatalf("future buffer reply %+v", r1)
	}
	r2 := postSnaps(t, s, "a", snapFor(12))
	if r2.Duplicates != 1 || r2.Buffered != 0 {
		t.Fatalf("buffered duplicate reply %+v", r2)
	}

	var decs decisionsReply
	get(t, s, "/v1/tenants/a/decisions", &decs)
	if len(decs.Decisions) != 10 {
		t.Fatalf("duplicates decided: %d decisions", len(decs.Decisions))
	}
}

func TestServeReorder(t *testing.T) {
	s := newTestServer(t, nil)
	defer s.Close()

	// Deterministic permutation: swap pairs within the reorder window.
	order := make([]int, 20)
	for i := range order {
		order[i] = i
	}
	for i := 0; i+1 < len(order); i += 2 {
		order[i], order[i+1] = order[i+1], order[i]
	}
	accepted, buffered := 0, 0
	for _, seq := range order {
		r := postSnaps(t, s, "a", snapFor(seq))
		accepted += r.Accepted
		buffered += r.Buffered
	}
	if accepted != 20 || buffered != 10 {
		t.Fatalf("accepted %d buffered %d", accepted, buffered)
	}
	var decs decisionsReply
	get(t, s, "/v1/tenants/a/decisions", &decs)
	if len(decs.Decisions) != 20 {
		t.Fatalf("%d decisions", len(decs.Decisions))
	}
	for i, d := range decs.Decisions {
		if d.Interval != i || !d.Observed {
			t.Fatalf("decision %d out of order or withheld: %+v", i, d)
		}
	}
}

func TestServeGapFlush(t *testing.T) {
	window := 4
	s := newTestServer(t, func(c *Config) { c.ReorderWindow = window })
	defer s.Close()

	postSnaps(t, s, "a", snapFor(0), snapFor(1))
	// Never send 2. Buffer 3..6 (window not exceeded), then 7 overflows
	// and forces the gap at 2 to be decided as withheld.
	var last ingestReply
	for seq := 3; seq <= 7; seq++ {
		last = postSnaps(t, s, "a", snapFor(seq))
	}
	if last.Gaps != 1 || last.NextSeq != 8 || last.BufferDepth != 0 {
		t.Fatalf("overflow reply %+v", last)
	}

	var decs decisionsReply
	get(t, s, "/v1/tenants/a/decisions", &decs)
	if len(decs.Decisions) != 8 {
		t.Fatalf("%d decisions", len(decs.Decisions))
	}
	gap := decs.Decisions[2]
	if gap.Observed || gap.Changed || gap.Interval != 2 {
		t.Fatalf("gap decision %+v", gap)
	}
	if gap.Actual != gap.Target {
		t.Fatalf("gap decision moved the container: %+v", gap)
	}
	// The withheld interval still bills, at the running container's list
	// price (the container held through the gap).
	var bill billReply
	get(t, s, "/v1/tenants/a/bill", &bill)
	if len(bill.LineItems) != 8 {
		t.Fatalf("%d line items", len(bill.LineItems))
	}
	item := bill.LineItems[2]
	want, ok := s.cat.ByName(gap.Actual)
	if !ok {
		t.Fatalf("gap actual %q not in catalog", gap.Actual)
	}
	if item.Container != want.Name || item.Cost != want.Cost {
		t.Fatalf("gap line item %+v, want container %s cost %v", item, want.Name, want.Cost)
	}

	// The gap's real snapshot arriving late is now a duplicate.
	r := postSnaps(t, s, "a", snapFor(2))
	if r.Duplicates != 1 || r.Accepted != 0 {
		t.Fatalf("late gap snapshot reply %+v", r)
	}
}

func TestServeRateLimit(t *testing.T) {
	clock := time.Unix(1000, 0)
	s := newTestServer(t, func(c *Config) {
		c.RatePerSec = 1
		c.Burst = 2
		c.Now = func() time.Time { return clock }
	})
	defer s.Close()

	postSnaps(t, s, "a", snapFor(0), snapFor(1)) // drains the burst
	reply, code := post(t, s, "a", wireSnapshot{Snapshot: snapFor(2)})
	if code != http.StatusTooManyRequests || reply.RateLimited != 1 || reply.Accepted != 0 {
		t.Fatalf("status %d reply %+v", code, reply)
	}
	// A different tenant has its own bucket.
	if r := postSnaps(t, s, "b", snapFor(0)); r.Accepted != 1 {
		t.Fatalf("tenant b throttled by tenant a: %+v", r)
	}
	// Time refills the bucket.
	clock = clock.Add(3 * time.Second)
	if r := postSnaps(t, s, "a", snapFor(2)); r.Accepted != 1 {
		t.Fatalf("post-refill reply %+v", r)
	}
	var m MetricsSnapshot
	get(t, s, "/metrics", &m)
	if m.RateLimited != 1 {
		t.Fatalf("metrics rate_limited %d", m.RateLimited)
	}
}

func TestServeSanitizesTelemetry(t *testing.T) {
	s := newTestServer(t, nil)
	defer s.Close()

	postSnaps(t, s, "a", snapFor(0))
	// JSON cannot carry NaN/Inf, but negative counters travel fine — and
	// SanitizeSnapshot clamps them to zero before the policy observes them.
	bad := snapFor(1)
	bad.P95LatencyMs = -5
	bad.Transactions = -1
	postSnaps(t, s, "a", bad)

	var m MetricsSnapshot
	get(t, s, "/metrics", &m)
	if m.SanitizedFields != 2 {
		t.Fatalf("sanitizer fired %d times, want 2: %+v", m.SanitizedFields, m)
	}
	// The ledger must hold the sanitized snapshot, not the raw wire bytes.
	var decs decisionsReply
	get(t, s, "/v1/tenants/a/decisions", &decs)
	got := decs.Decisions[1].Snapshot
	if got.P95LatencyMs != 0 || got.Transactions != 0 {
		t.Fatalf("unsanitized snapshot reached the ledger: %+v", got)
	}
}

func TestServeBadRequests(t *testing.T) {
	s := newTestServer(t, nil)
	defer s.Close()

	longID := ""
	for i := 0; i < 65; i++ {
		longID += "x"
	}
	if _, code := post(t, s, longID, wireSnapshot{Snapshot: snapFor(0)}); code != http.StatusBadRequest {
		t.Fatalf("bad tenant id: status %d", code)
	}
	req := httptest.NewRequest("POST", "/v1/tenants/a/telemetry", bytes.NewReader([]byte("{nope")))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad json: status %d", w.Code)
	}
	if _, code := post(t, s, "a", map[string]interface{}{}); code != http.StatusBadRequest {
		t.Fatalf("empty body: status %d", code)
	}
	neg := -1
	if _, code := post(t, s, "a", wireSnapshot{Seq: &neg, Snapshot: snapFor(0)}); code != http.StatusBadRequest {
		t.Fatalf("negative seq: status %d", code)
	}
	if code := get(t, s, "/v1/tenants/ghost/decisions", nil); code != http.StatusNotFound {
		t.Fatalf("unknown tenant: status %d", code)
	}
}

func TestServeMaxTenants(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxTenants = 2 })
	defer s.Close()

	postSnaps(t, s, "a", snapFor(0))
	postSnaps(t, s, "b", snapFor(0))
	if _, code := post(t, s, "c", wireSnapshot{Snapshot: snapFor(0)}); code != http.StatusServiceUnavailable {
		t.Fatalf("over-cap tenant: status %d", code)
	}
	// Existing tenants still ingest.
	if r := postSnaps(t, s, "a", snapFor(1)); r.Accepted != 1 {
		t.Fatalf("existing tenant refused: %+v", r)
	}
}

// collectRecorder captures the live DecisionRecord stream via TeeRecorder.
type collectRecorder struct {
	recs []loop.DecisionRecord
}

func (c *collectRecorder) Record(r loop.DecisionRecord) { c.recs = append(c.recs, r) }

// TestServeReplayEqualsLive is the serving half of the ledger's core
// property: under duplicated, reordered, batched ingest, the replayed
// ledger is byte-identical to the decision stream the loop emitted live.
func TestServeReplayEqualsLive(t *testing.T) {
	live := &collectRecorder{}
	dir := t.TempDir()
	s := newTestServer(t, func(c *Config) {
		c.LedgerDir = dir
		c.TeeRecorder = func(id string) loop.Recorder { return live }
	})
	defer s.Close()

	// Adversarial but in-window ingest: pair-swapped order, every third
	// snapshot sent twice, varying batch sizes.
	var batch []telemetry.Snapshot
	flush := func() {
		if len(batch) > 0 {
			postSnaps(t, s, "a", batch...)
			batch = batch[:0]
		}
	}
	order := make([]int, 60)
	for i := range order {
		order[i] = i
	}
	for i := 0; i+1 < len(order); i += 2 {
		order[i], order[i+1] = order[i+1], order[i]
	}
	for k, seq := range order {
		batch = append(batch, snapFor(seq))
		if seq%3 == 0 {
			batch = append(batch, snapFor(seq))
		}
		if len(batch) >= 1+k%5 {
			flush()
		}
	}
	flush()

	log, err := ledger.Replay(filepath.Join(dir, "a.ledger"))
	if err != nil {
		t.Fatal(err)
	}
	replayed := log.Decisions()
	if len(replayed) != len(live.recs) || len(replayed) != 60 {
		t.Fatalf("replayed %d, live %d, want 60", len(replayed), len(live.recs))
	}
	for i := range replayed {
		lb := ledger.EncodeDecision(&live.recs[i])
		rb := ledger.EncodeDecision(&replayed[i])
		if !bytes.Equal(lb, rb) {
			t.Fatalf("decision %d: replay differs from live\nlive:   %+v\nreplay: %+v", i, live.recs[i], replayed[i])
		}
	}
	items := log.Items()
	if len(items) != 60 {
		t.Fatalf("%d line items", len(items))
	}
	for i, it := range items {
		if want := ledger.LineItemFor(live.recs[i]); it != want {
			t.Fatalf("line item %d: %+v want %+v", i, it, want)
		}
	}
}

// TestServeDeterministicLedger: two servers fed the same logical stream
// through different arrival orders and batch shapes write byte-identical
// ledger files.
func TestServeDeterministicLedger(t *testing.T) {
	run := func(dir string, variant int) {
		s := newTestServer(t, func(c *Config) { c.LedgerDir = dir })
		order := make([]int, 40)
		for i := range order {
			order[i] = i
		}
		if variant == 1 {
			for i := 0; i+1 < len(order); i += 2 {
				order[i], order[i+1] = order[i+1], order[i]
			}
		}
		for k, seq := range order {
			snaps := []telemetry.Snapshot{snapFor(seq)}
			if variant == 1 && k%4 == 0 {
				snaps = append(snaps, snapFor(seq)) // duplicates
			}
			postSnaps(t, s, "a", snaps...)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	d0, d1 := t.TempDir(), t.TempDir()
	run(d0, 0)
	run(d1, 1)
	b0, err := os.ReadFile(filepath.Join(d0, "a.ledger"))
	if err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(filepath.Join(d1, "a.ledger"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b0, b1) {
		t.Fatalf("ledgers differ across ingest shapes: %d vs %d bytes", len(b0), len(b1))
	}
}

func TestServeDrainFlushesBuffered(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, func(c *Config) { c.LedgerDir = dir })

	// 0..4 decided; 7..9 buffered behind the missing 5 and 6.
	for i := 0; i < 5; i++ {
		postSnaps(t, s, "a", snapFor(i))
	}
	postSnaps(t, s, "a", snapFor(7), snapFor(8), snapFor(9))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	log, err := ledger.Replay(filepath.Join(dir, "a.ledger"))
	if err != nil {
		t.Fatal(err)
	}
	decs := log.Decisions()
	if len(decs) != 10 {
		t.Fatalf("drained to %d decisions, want 10", len(decs))
	}
	for i, d := range decs {
		if d.Interval != i {
			t.Fatalf("decision %d has interval %d", i, d.Interval)
		}
		wantObserved := i < 5 || i > 6
		if d.Observed != wantObserved {
			t.Fatalf("decision %d observed=%v", i, d.Observed)
		}
	}
	// Close is idempotent and further ingest is refused.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, code := post(t, s, "b", wireSnapshot{Snapshot: snapFor(0)}); code != http.StatusServiceUnavailable {
		t.Fatalf("ingest after drain: status %d", code)
	}
}

func TestServeRestartResume(t *testing.T) {
	dir := t.TempDir()

	s1 := newTestServer(t, func(c *Config) { c.LedgerDir = dir })
	for i := 0; i < 10; i++ {
		postSnaps(t, s1, "a", snapFor(i))
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, func(c *Config) { c.LedgerDir = dir })
	defer s2.Close()
	// A replayed-at-least-once sender resends the tail it never saw acked.
	reply := postSnaps(t, s2, "a", snapFor(8), snapFor(9), snapFor(10), snapFor(11))
	if reply.Duplicates != 2 || reply.Accepted != 2 || reply.NextSeq != 12 {
		t.Fatalf("resume reply %+v", reply)
	}

	log, err := ledger.Replay(filepath.Join(dir, "a.ledger"))
	if err != nil {
		t.Fatal(err)
	}
	decs := log.Decisions()
	if len(decs) != 12 {
		t.Fatalf("%d decisions after restart, want 12", len(decs))
	}
	for i, d := range decs {
		if d.Interval != i {
			t.Fatalf("decision %d has interval %d (re-billed?)", i, d.Interval)
		}
	}
	// The resumed loop continues from the container the tenant was left
	// in, not the catalog floor.
	if decs[10].Actual != decs[9].Target {
		t.Fatalf("restart lost the running container: %q then %q", decs[9].Target, decs[10].Actual)
	}
}

// TestServeRestartAfterTornWrite: a crash mid-append leaves a torn ledger
// tail; the restarted server truncates it and re-decides the lost
// interval when the sender retries.
func TestServeRestartAfterTornWrite(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, func(c *Config) { c.LedgerDir = dir })
	for i := 0; i < 6; i++ {
		postSnaps(t, s1, "a", snapFor(i))
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: chop 3 bytes off the file.
	path := filepath.Join(dir, "a.ledger")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, func(c *Config) { c.LedgerDir = dir })
	defer s2.Close()
	// The torn record was interval 5's line item; the decision for 5 is
	// intact, so the watermark still resumes at 6 and the sender's retry
	// of 5 is a duplicate.
	reply := postSnaps(t, s2, "a", snapFor(5), snapFor(6))
	if reply.Duplicates != 1 || reply.Accepted != 1 {
		t.Fatalf("post-tear reply %+v", reply)
	}
	log, err := ledger.Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if log.Truncated {
		t.Fatalf("torn tail not healed on reopen")
	}
	if got := log.LastDecisionInterval(); got != 6 {
		t.Fatalf("last interval %d, want 6", got)
	}
}

func TestTokenBucket(t *testing.T) {
	now := time.Unix(0, 0)
	b := newTokenBucket(2, 3, now)
	for i := 0; i < 3; i++ {
		if !b.allow(now) {
			t.Fatalf("burst token %d refused", i)
		}
	}
	if b.allow(now) {
		t.Fatal("empty bucket allowed")
	}
	now = now.Add(500 * time.Millisecond) // +1 token at 2/s
	if !b.allow(now) {
		t.Fatal("refilled token refused")
	}
	if b.allow(now) {
		t.Fatal("over-refill allowed")
	}
	// Refill never exceeds the burst.
	now = now.Add(time.Hour)
	granted := 0
	for b.allow(now) {
		granted++
	}
	if granted != 3 {
		t.Fatalf("granted %d after long idle, want burst 3", granted)
	}
	// A nil bucket (unlimited) always allows.
	var nb *tokenBucket
	if !nb.allow(now) {
		t.Fatal("nil bucket refused")
	}
}

func TestServeConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing LedgerDir accepted")
	}
	if _, err := New(Config{LedgerDir: filepath.Join(t.TempDir(), "nested", "dir")}); err != nil {
		t.Fatalf("nested ledger dir: %v", err)
	}
}
