package serve

import (
	"math"
	"time"
)

// tokenBucket is a classic per-tenant token bucket: capacity `burst`
// tokens, refilled at `rate` tokens/second, one token per ingested
// snapshot. It is not goroutine-safe; callers hold the tenant lock. The
// clock is passed in (the server's injectable now), so tests drive it
// deterministically.
type tokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int, now time.Time) *tokenBucket {
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: now}
}

// allow refills for the elapsed time and takes one token if available.
func (b *tokenBucket) allow(now time.Time) bool {
	if b == nil {
		return true
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// retryAfterSec estimates, in whole seconds (minimum 1, the header's
// resolution), how long until the bucket holds a token again. Called
// right after a refused allow, so the refill is already up to date.
func (b *tokenBucket) retryAfterSec() int {
	if b == nil || b.rate <= 0 {
		return 1
	}
	need := 1 - b.tokens
	if need <= 0 {
		return 1
	}
	if sec := int(math.Ceil(need / b.rate)); sec > 1 {
		return sec
	}
	return 1
}
