package serve

import (
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"daasscale/internal/ledger"
	"daasscale/internal/loop"
	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
)

// stateApplier is the serving substrate: the daemon does not run the
// tenant's database, it tracks the desired container the control loop has
// decided on (in production this record is what the resize executor
// reconciles the real container against). Apply is infallible and
// synchronous, so the loop's synchronous path applies decisions within
// the interval, exactly like the simulation runners' engine applier.
type stateApplier struct {
	cur   resource.Container
	memMB float64
}

// Apply implements loop.Applier.
func (a *stateApplier) Apply(c resource.Container) error {
	a.cur = c
	return nil
}

// Actual implements loop.Applier.
func (a *stateApplier) Actual() resource.Container { return a.cur }

// tenant is one tenant's full serving pipeline: the bounded reorder
// window in front, the control loop in the middle, the append-only
// ledger behind. All state is guarded by mu; different tenants never
// share state, so ingest scales across tenants without contention.
type tenant struct {
	id  string
	srv *Server

	// mu serializes the pipeline. The ledger writer is not goroutine-safe
	// and the loop is single-goroutine state; one lock covers both.
	mu sync.Mutex

	lp      *loop.TenantLoop[resource.Container]
	applier *stateApplier
	led     *ledger.Writer
	ledRec  *ledger.Recorder

	// nextSeq is the ingest watermark: the next interval the loop will
	// decide. Every seq below it has been decided (possibly as a withheld
	// gap), which makes the watermark a complete duplicate filter.
	nextSeq int
	// buf holds out-of-order future snapshots, keyed by seq, bounded by
	// the server's reorder window.
	buf map[int]telemetry.Snapshot
	// prev is the last sanitized snapshot — SanitizeSnapshot's repair
	// source for non-finite fields of the next one.
	prev     telemetry.Snapshot
	havePrev bool

	bucket *tokenBucket

	// resumed reports whether the tenant's watermark was restored from an
	// existing ledger at open.
	resumed bool

	// quarantined marks the degraded mode: a storage error poisoned the
	// pipeline, ingest is refused with 503 until a recovery probe
	// succeeds. quarErr is the latched cause; lastProbe paces probes.
	quarantined bool
	quarErr     error
	lastProbe   time.Time
}

// ingestCounts summarizes what one ingest call did, for the HTTP reply
// and the metrics. NextSeq is the durability acknowledgment: in a 200 or
// 429 reply every interval below it is decided and (in the strict sync
// modes) on disk; in an error reply it is zero and acknowledges nothing.
type ingestCounts struct {
	Accepted    int `json:"accepted"`
	Duplicates  int `json:"duplicates"`
	Buffered    int `json:"buffered"`
	Gaps        int `json:"gaps"`
	RateLimited int `json:"rate_limited"`
	NextSeq     int `json:"next_seq"`
	BufferDepth int `json:"buffer_depth"`
	// RetryAfterSec mirrors the Retry-After header on a 429 reply.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}

// newTenant assembles the pipeline, resuming the ingest watermark and the
// running container from the tenant's ledger when one exists — a restart
// continues the decision sequence instead of re-billing interval 0.
func (s *Server) newTenant(id string) (*tenant, error) {
	path := filepath.Join(s.cfg.LedgerDir, id+".ledger")
	led, err := ledger.OpenWriterFS(s.fs, path, ledger.WithSyncEvery(s.syncEvery))
	if err != nil {
		return nil, err
	}
	t := &tenant{id: id, srv: s, led: led, bucket: s.newBucket()}
	log, err := ledger.ReplayFS(s.fs, path)
	if err != nil {
		led.Close()
		return nil, err
	}
	if err := t.healBill(log); err != nil {
		led.Close()
		return nil, err
	}
	if err := t.resetFromLog(log); err != nil {
		led.Close()
		return nil, err
	}
	return t, nil
}

// resetFromLog (re)builds the tenant's in-memory pipeline — applier,
// policy, loop, watermark — from a replayed ledger. It is the only way
// loop state is ever constructed: at first open and again after a
// quarantine, because once a storage error fires the in-memory loop has
// run ahead of disk and cannot be trusted; the durable record is the
// ground truth the pipeline restarts from.
func (t *tenant) resetFromLog(log *ledger.Log) error {
	s := t.srv
	t.applier = &stateApplier{cur: s.cat.Smallest()}
	t.buf = make(map[int]telemetry.Snapshot)
	t.nextSeq = 0
	t.resumed = false
	t.prev = telemetry.Snapshot{}
	t.havePrev = false
	if last := log.LastDecisionInterval(); last >= 0 {
		t.nextSeq = last + 1
		t.resumed = true
	}
	// Resume the substrate from the last decided target, so billing and
	// hold decisions continue from the container the tenant was actually
	// left in.
	decs := log.Decisions()
	if n := len(decs); n > 0 {
		if c, ok := s.cat.ByName(decs[n-1].Target); ok {
			t.applier.cur = c
		}
		t.applier.memMB = decs[n-1].BalloonTargetMB
	}
	pol, err := s.newPolicy(t.id, t.applier.cur)
	if err != nil {
		return err
	}
	t.ledRec = &ledger.Recorder{W: t.led}
	var rec loop.Recorder = t.ledRec
	if s.cfg.TeeRecorder != nil {
		if extra := s.cfg.TeeRecorder(t.id); extra != nil {
			rec = teeRecorder{t.ledRec, extra}
		}
	}
	t.lp = loop.New(loop.Config[resource.Container]{
		ID:   t.id,
		Seed: s.tenantSeed(t.id),
		Decider: &loop.PolicyDecider{
			Policy:       pol,
			MemoryTarget: func() float64 { return t.applier.memMB },
		},
		Applier:  t.applier,
		Recorder: rec,
		Describe: loop.DescribeContainer,
	})
	return nil
}

// healBill repairs the one lockstep break a torn tail can leave: a
// trailing decision whose line item never made it to disk. The missing
// item is derived deterministically from the decision — byte-identical to
// what the live writer would have appended — and synced, so the interval
// is billed exactly once and the bill can never disagree with the
// decision trail. The healed entry is appended to log too, keeping the
// caller's view consistent with disk.
func (t *tenant) healBill(log *ledger.Log) error {
	n := len(log.Entries)
	if n == 0 || log.Entries[n-1].Decision == nil {
		return nil
	}
	it := ledger.LineItemFor(*log.Entries[n-1].Decision)
	if err := t.led.AppendLineItem(it); err != nil {
		return err
	}
	if err := t.led.Sync(); err != nil {
		return err
	}
	log.Entries = append(log.Entries, ledger.Entry{Kind: ledger.KindLineItem, Item: &it})
	return nil
}

// quarantine enters degraded mode: the cause is latched, the reorder
// buffer is dropped (nothing in it was ever acknowledged as durable — the
// client's resend covers it; keeping it would risk acking it later from a
// pipeline that has diverged from disk), and until a recovery probe
// succeeds every ingest gets a clean 503.
func (t *tenant) quarantine(err error) {
	if !t.quarantined {
		t.srv.metrics.addQuarantine()
	}
	t.quarantined = true
	t.quarErr = err
	t.lastProbe = t.srv.now()
	t.buf = make(map[int]telemetry.Snapshot)
}

// tryRecover attempts to leave degraded mode, paced by the server's probe
// interval. The probe is ledger rotation itself: sealing the damaged
// segment and creating a fresh one exercises create, write, fsync,
// rename, and directory sync — if all of that works the disk has
// demonstrably recovered, and the pipeline is rebuilt from the durable
// record. Returns true when the tenant is healthy again.
func (t *tenant) tryRecover() bool {
	now := t.srv.now()
	if now.Sub(t.lastProbe) < t.srv.probeInterval {
		return false
	}
	t.lastProbe = now
	if err := t.rebuild(); err != nil {
		t.quarErr = err
		return false
	}
	t.quarantined = false
	t.quarErr = nil
	t.srv.metrics.addRecovery()
	return true
}

// rebuild rotates the ledger (the probe write) and reconstructs the whole
// in-memory pipeline from the replayed durable record.
func (t *tenant) rebuild() error {
	if err := t.led.Rotate(); err != nil {
		return err
	}
	log, err := ledger.ReplayFS(t.srv.fs, t.led.Path())
	if err != nil {
		return err
	}
	if err := t.healBill(log); err != nil {
		return err
	}
	return t.resetFromLog(log)
}

// step runs one interval through the control loop and the ledger.
// observed=false marks a withheld interval — a gap the reorder window
// gave up on — which bills the running container's list price and holds
// the current state.
func (t *tenant) step(seq int, snap telemetry.Snapshot, observed bool) error {
	if observed {
		// The wire-claimed interval must be the sequence number the
		// idempotency contract accepted; a skewed Interval field inside
		// the payload must not leak into the audit trail.
		snap.Interval = seq
		var prevPtr *telemetry.Snapshot
		if t.havePrev {
			prevPtr = &t.prev
		}
		if fixed := telemetry.SanitizeSnapshot(&snap, prevPtr); fixed > 0 {
			t.srv.metrics.addSanitized(int64(fixed))
		}
		t.prev = snap
		t.havePrev = true
	} else {
		cur := t.applier.cur
		snap = telemetry.Snapshot{
			Interval:  seq,
			Container: cur.Name,
			Step:      cur.Step,
			Cost:      cur.Cost,
		}
	}
	start := t.srv.now()
	if err := t.lp.StepSnapshot(seq, snap, observed); err != nil {
		return err
	}
	t.applier.memMB = t.lp.LastDecision().BalloonTargetMB
	t.srv.metrics.observeDecision(t.srv.now().Sub(start))
	return t.ledRec.Err()
}

// drainReady steps every contiguously buffered snapshot at the watermark.
func (t *tenant) drainReady(counts *ingestCounts) error {
	for {
		snap, ok := t.buf[t.nextSeq]
		if !ok {
			return nil
		}
		delete(t.buf, t.nextSeq)
		if err := t.step(t.nextSeq, snap, true); err != nil {
			return err
		}
		counts.Accepted++
		t.nextSeq++
	}
}

// flushOverflow gives up waiting for missing intervals once the reorder
// buffer exceeds the window: the gap up to the earliest buffered snapshot
// is decided as withheld intervals (hold decisions, billed at the running
// container's list price), then the buffered run drains. Late snapshots
// for a flushed gap are thereafter duplicates — decided intervals are
// never re-decided, which is what keeps replay deterministic.
func (t *tenant) flushOverflow(counts *ingestCounts) error {
	for len(t.buf) > t.srv.reorderWindow {
		min := -1
		for seq := range t.buf {
			if min < 0 || seq < min {
				min = seq
			}
		}
		for i := t.nextSeq; i < min; i++ {
			if err := t.step(i, telemetry.Snapshot{}, false); err != nil {
				return err
			}
			counts.Gaps++
			t.nextSeq++
		}
		if err := t.drainReady(counts); err != nil {
			return err
		}
	}
	return nil
}

// ingest runs one batch of wire snapshots through the pipeline under the
// tenant lock. Each snapshot charges one rate-limiter token; when the
// bucket empties the rest of the batch is refused (the client retries
// with backoff) without touching the decided prefix.
//
// Storage failure is fail-safe, never fail-silent: any step or sync error
// quarantines the tenant and the reply is a 503 whose counts acknowledge
// nothing — the client resends after Retry-After, and because decided
// intervals are duplicates, the resend is harmless. A quarantined tenant
// answers 503 immediately (after at most one recovery probe).
func (t *tenant) ingest(batch []wireSnapshot) (ingestCounts, int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()

	counts := ingestCounts{}
	if t.quarantined && !t.tryRecover() {
		return counts, http.StatusServiceUnavailable, fmt.Errorf("serve: tenant %s degraded (storage failure): %v", t.id, t.quarErr)
	}
	status := http.StatusOK
	for _, ws := range batch {
		if !t.bucket.allow(t.srv.now()) {
			counts.RateLimited++
			counts.RetryAfterSec = t.bucket.retryAfterSec()
			status = http.StatusTooManyRequests
			break
		}
		seq := ws.seq()
		if seq < 0 {
			return counts, http.StatusBadRequest, fmt.Errorf("serve: negative sequence number %d", seq)
		}
		switch {
		case seq < t.nextSeq:
			counts.Duplicates++ // already decided (or flushed as a gap)
		case seq == t.nextSeq:
			if err := t.step(seq, ws.Snapshot, true); err != nil {
				t.quarantine(err)
				return ingestCounts{}, http.StatusServiceUnavailable, err
			}
			counts.Accepted++
			t.nextSeq++
			if err := t.drainReady(&counts); err != nil {
				t.quarantine(err)
				return ingestCounts{}, http.StatusServiceUnavailable, err
			}
		default: // future: buffer within the bounded reorder window
			if _, dup := t.buf[seq]; dup {
				counts.Duplicates++
				continue
			}
			t.buf[seq] = ws.Snapshot
			counts.Buffered++
			if err := t.flushOverflow(&counts); err != nil {
				t.quarantine(err)
				return ingestCounts{}, http.StatusServiceUnavailable, err
			}
		}
	}
	// Request-sync mode (SyncEvery < 0) defers durability to one fsync
	// here, after the whole batch; per-record and group-commit strides
	// are the writer's own policy. Either way the fsync must succeed
	// before NextSeq is reported — the reply is the durability ack.
	if t.srv.syncEvery < 0 {
		if err := t.led.Sync(); err != nil {
			t.quarantine(err)
			return ingestCounts{}, http.StatusServiceUnavailable, err
		}
	}
	counts.NextSeq = t.nextSeq
	counts.BufferDepth = len(t.buf)
	return counts, status, nil
}

// drain flushes everything the tenant has buffered — gaps decided as
// withheld intervals, buffered snapshots decided in order — then syncs
// and closes the ledger. Called on graceful shutdown so nothing received
// is lost.
//
// A quarantined tenant is drained by releasing the handle, nothing more:
// its buffer was already dropped (nothing in it was acked), and stepping
// through a poisoned ledger would either fail again or bury torn frames.
// Crucially this cannot hang or spuriously ack — the quarantined path
// does no I/O that can block and records nothing new.
func (t *tenant) drain() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.quarantined {
		t.led.Close()
		return nil
	}
	var counts ingestCounts
	for len(t.buf) > 0 {
		min := -1
		for seq := range t.buf {
			if min < 0 || seq < min {
				min = seq
			}
		}
		for i := t.nextSeq; i < min; i++ {
			if err := t.step(i, telemetry.Snapshot{}, false); err != nil {
				t.quarantine(err)
				t.led.Close()
				return err
			}
			t.nextSeq++
		}
		if err := t.drainReady(&counts); err != nil {
			t.quarantine(err)
			t.led.Close()
			return err
		}
	}
	return t.led.Close()
}

// bufferDepth reports the current reorder-buffer size.
func (t *tenant) bufferDepth() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// teeRecorder fans one record out to both destinations (ledger first).
type teeRecorder [2]loop.Recorder

// Record implements loop.Recorder.
func (tr teeRecorder) Record(r loop.DecisionRecord) {
	tr[0].Record(r)
	tr[1].Record(r)
}
