package serve

import (
	"sync"
	"time"

	"daasscale/internal/stats"
)

// metrics aggregates serving counters. Counters are monotonic over the
// server's lifetime; the /metrics endpoint snapshots them together with
// point-in-time gauges (tenant count, reorder-buffer depth, ledger size).
type metrics struct {
	mu    sync.Mutex
	start time.Time

	requests    int64
	errors      int64
	ingested    int64
	duplicates  int64
	buffered    int64
	gaps        int64
	rateLimited int64
	sanitized   int64
	decisions   int64
	decLat      *stats.Sketch
	decLatSumNs int64

	storageErrors int64
	quarantines   int64
	recoveries    int64
}

func newMetrics(now time.Time) *metrics {
	return &metrics{start: now, decLat: stats.NewSketch(0.01)}
}

func (m *metrics) addRequest() {
	m.mu.Lock()
	m.requests++
	m.mu.Unlock()
}

func (m *metrics) addError() {
	m.mu.Lock()
	m.errors++
	m.mu.Unlock()
}

// addQuarantine counts one storage failure escalating to tenant
// quarantine.
func (m *metrics) addQuarantine() {
	m.mu.Lock()
	m.storageErrors++
	m.quarantines++
	m.mu.Unlock()
}

// addRecovery counts one successful recovery probe re-admitting a tenant.
func (m *metrics) addRecovery() {
	m.mu.Lock()
	m.recoveries++
	m.mu.Unlock()
}

func (m *metrics) addSanitized(n int64) {
	m.mu.Lock()
	m.sanitized += n
	m.mu.Unlock()
}

func (m *metrics) addIngest(c ingestCounts) {
	m.mu.Lock()
	m.ingested += int64(c.Accepted)
	m.duplicates += int64(c.Duplicates)
	m.buffered += int64(c.Buffered)
	m.gaps += int64(c.Gaps)
	m.rateLimited += int64(c.RateLimited)
	m.mu.Unlock()
}

// observeDecision records one decision's end-to-end latency (step through
// ledger append) in the quantile sketch.
func (m *metrics) observeDecision(d time.Duration) {
	m.mu.Lock()
	m.decisions++
	m.decLat.Add(float64(d.Nanoseconds()) / 1e6)
	m.decLatSumNs += d.Nanoseconds()
	m.mu.Unlock()
}

// latencyMetrics summarizes the decision-latency sketch.
type latencyMetrics struct {
	Count int64   `json:"count"`
	AvgMs float64 `json:"avg_ms"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// ledgerMetrics aggregates the tenants' ledger writers.
type ledgerMetrics struct {
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
	Syncs   int64 `json:"syncs"`
	// Seals counts segments sealed away by degraded-mode rotations.
	Seals int64 `json:"seals"`
}

// storageMetrics summarizes the storage-fault machinery: how many
// failures were seen, how the quarantine/recover cycle has gone, and how
// many tenants are degraded right now.
type storageMetrics struct {
	Errors         int64 `json:"errors"`
	Quarantines    int64 `json:"quarantines"`
	Recoveries     int64 `json:"recoveries"`
	QuarantinedNow int   `json:"quarantined_now"`
}

// MetricsSnapshot is the /metrics response body.
type MetricsSnapshot struct {
	UptimeSeconds     float64        `json:"uptime_seconds"`
	Tenants           int            `json:"tenants"`
	Draining          bool           `json:"draining"`
	HTTPRequests      int64          `json:"http_requests"`
	HTTPErrors        int64          `json:"http_errors"`
	IngestedSnapshots int64          `json:"ingested_snapshots"`
	IngestPerSec      float64        `json:"ingest_per_sec"`
	Duplicates        int64          `json:"duplicates"`
	ReorderBuffered   int64          `json:"reorder_buffered"`
	ReorderDepth      int            `json:"reorder_buffer_depth"`
	GapIntervals      int64          `json:"gap_intervals"`
	RateLimited       int64          `json:"rate_limited"`
	SanitizedFields   int64          `json:"sanitized_fields"`
	Decisions         int64          `json:"decisions"`
	DecisionLatency   latencyMetrics `json:"decision_latency"`
	Ledger            ledgerMetrics  `json:"ledger"`
	Storage           storageMetrics `json:"storage"`
}

func (m *metrics) snapshot(now time.Time, tenants, depth int, draining bool) MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	up := now.Sub(m.start).Seconds()
	snap := MetricsSnapshot{
		UptimeSeconds:     up,
		Tenants:           tenants,
		Draining:          draining,
		HTTPRequests:      m.requests,
		HTTPErrors:        m.errors,
		IngestedSnapshots: m.ingested,
		Duplicates:        m.duplicates,
		ReorderBuffered:   m.buffered,
		ReorderDepth:      depth,
		GapIntervals:      m.gaps,
		RateLimited:       m.rateLimited,
		SanitizedFields:   m.sanitized,
		Decisions:         m.decisions,
		Storage: storageMetrics{
			Errors:      m.storageErrors,
			Quarantines: m.quarantines,
			Recoveries:  m.recoveries,
		},
	}
	if up > 0 {
		snap.IngestPerSec = float64(m.ingested) / up
	}
	if n := m.decLat.Count(); n > 0 {
		snap.DecisionLatency = latencyMetrics{
			Count: int64(n),
			AvgMs: float64(m.decLatSumNs) / 1e6 / float64(n),
			P50Ms: m.decLat.Quantile(0.50),
			P95Ms: m.decLat.Quantile(0.95),
			P99Ms: m.decLat.Quantile(0.99),
			MaxMs: m.decLat.Max(),
		}
	}
	return snap
}
