package serve

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"daasscale/internal/fsio"
	"daasscale/internal/ledger"
	"daasscale/internal/loop"
)

// LedgerCheck is one tenant's verified ledger summary.
type LedgerCheck struct {
	// Tenant is the tenant ID the ledger belongs to.
	Tenant string `json:"tenant"`
	// Decisions is the count of replayed decisions — all verified
	// contiguous from interval 0.
	Decisions int `json:"decisions"`
	// Items is the count of billing line-items, each verified
	// byte-identical to its decision's derivation.
	Items int `json:"items"`
	// Segments is how many segment files the ledger spans.
	Segments int `json:"segments"`
	// TrailingUnbilled reports a final decision whose line item had not
	// landed yet — legal transiently (the next open heals it), never
	// mid-stream.
	TrailingUnbilled bool `json:"trailing_unbilled,omitempty"`
	// TotalCost is the replayed bill.
	TotalCost float64 `json:"total_cost"`
}

// VerifyLedgers replays every tenant ledger under dir and asserts the
// crash-consistency invariants the serving contract promises:
//
//  1. Decision intervals are contiguous from 0 — no decided interval is
//     ever missing or duplicated, across any number of crashes,
//     rotations, and recoveries.
//  2. The bill advances in lockstep: the i-th line item is byte-identical
//     to LineItemFor(i-th decision). At most the final decision may be
//     transiently unbilled (a torn tail the next recovery heals); a
//     mid-stream mismatch is a wrong bill and fails.
//  3. No acknowledged ingest is lost: for each tenant in acked, the
//     replayed decision count covers every interval below the
//     acknowledged NextSeq.
//
// acked maps tenant ID to the highest NextSeq a 200/429 reply carried
// (nil = skip invariant 3). The caller must have run the server in a
// strict sync mode (SyncEvery 1 or < 0) for invariant 3 to be exact;
// group-commit mode intentionally trades the unsynced tail for
// throughput.
func VerifyLedgers(fsys fsio.FS, dir string, acked map[string]int) ([]LedgerCheck, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: verify: %w", err)
	}
	// A tenant is present if its active segment or any sealed segment is —
	// a crash can land between a rotation's rename and the fresh create.
	tenants := map[string]bool{}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if i := strings.Index(name, ".ledger.seal-"); i > 0 {
			tenants[name[:i]] = true
			continue
		}
		if strings.HasSuffix(name, ".ledger") {
			tenants[strings.TrimSuffix(name, ".ledger")] = true
		}
	}
	ids := make([]string, 0, len(tenants))
	for id := range tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	checks := make([]LedgerCheck, 0, len(ids))
	for _, id := range ids {
		log, err := ledger.ReplayFS(fsys, filepath.Join(dir, id+".ledger"))
		if err != nil {
			return checks, fmt.Errorf("serve: verify %s: %w", id, err)
		}
		c, err := checkLog(id, log)
		if err != nil {
			return checks, err
		}
		if a, ok := acked[id]; ok && c.Decisions < a {
			return checks, fmt.Errorf("serve: verify %s: acknowledged NextSeq %d but only %d decisions survived — an acked decision was lost", id, a, c.Decisions)
		}
		checks = append(checks, c)
	}
	return checks, nil
}

// checkLog verifies one replayed ledger's internal invariants.
func checkLog(id string, log *ledger.Log) (LedgerCheck, error) {
	c := LedgerCheck{Tenant: id, Segments: log.Segments, TotalCost: log.TotalCost()}
	decs := log.Decisions()
	items := log.Items()
	c.Decisions = len(decs)
	c.Items = len(items)
	for i, d := range decs {
		if d.Interval != i {
			return c, fmt.Errorf("serve: verify %s: decision %d covers interval %d — the decided stream has a hole or a duplicate", id, i, d.Interval)
		}
	}
	switch {
	case len(items) == len(decs):
	case len(items) == len(decs)-1:
		c.TrailingUnbilled = true
	default:
		return c, fmt.Errorf("serve: verify %s: %d decisions but %d line items — the bill and the decision trail disagree", id, len(decs), len(items))
	}
	for i, it := range items {
		want := ledger.LineItemFor(decs[i])
		if !bytes.Equal(ledger.EncodeLineItem(&it), ledger.EncodeLineItem(&want)) {
			return c, fmt.Errorf("serve: verify %s: line item %d (%+v) does not derive from its decision (%+v) — wrong bill", id, i, it, want)
		}
	}
	return c, nil
}

// VerifyReplayPrefix asserts the replayed decision stream is a prefix of
// the live stream: liveDecisions is what a TeeRecorder (or the sender's
// own bookkeeping) observed in order, and every replayed decision must be
// byte-identical to its live counterpart. Replay may be shorter (an
// unsynced tail lost to a crash is legal, if unacked) but never divergent
// and never longer than live.
func VerifyReplayPrefix(id string, replayed, live []loop.DecisionRecord) error {
	if len(replayed) > len(live) {
		return fmt.Errorf("serve: verify %s: replay has %d decisions, live only %d — replay invented decisions", id, len(replayed), len(live))
	}
	for i := range replayed {
		if !bytes.Equal(ledger.EncodeDecision(&replayed[i]), ledger.EncodeDecision(&live[i])) {
			return fmt.Errorf("serve: verify %s: replayed decision %d diverges from the live stream", id, i)
		}
	}
	return nil
}
