package serve

import (
	"context"
	"net/http/httptest"
	"testing"
)

func TestRunLoadSmallFleet(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.SyncEvery = -1 })
	defer s.Close()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	res, err := RunLoad(context.Background(), LoadSpec{
		BaseURL:   hs.URL,
		Tenants:   8,
		Snapshots: 40,
		Batch:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.Accepted != 8*40 {
		t.Fatalf("load result %+v", res)
	}

	// Every stream's decisions landed, in order, one ledger per tenant.
	var m MetricsSnapshot
	get(t, s, "/metrics", &m)
	if m.Tenants != 8 || m.IngestedSnapshots != 8*40 || m.Decisions != 8*40 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestRunLoadValidatesSpec(t *testing.T) {
	if _, err := RunLoad(context.Background(), LoadSpec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}
