package diskfaults

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"daasscale/internal/fsio"
)

func mustMkdir(t *testing.T, m *MemFS, dir string) {
	t.Helper()
	if err := m.MkdirAll(dir, 0o755); err != nil {
		t.Fatalf("MkdirAll(%s): %v", dir, err)
	}
}

func writeAll(t *testing.T, f fsio.File, data []byte) {
	t.Helper()
	if _, err := f.Write(data); err != nil {
		t.Fatalf("Write: %v", err)
	}
}

func readBack(t *testing.T, fsys fsio.FS, path string) []byte {
	t.Helper()
	data, err := fsys.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile(%s): %v", path, err)
	}
	return data
}

func TestMemFSUnsyncedBytesLostOnCrash(t *testing.T) {
	m := NewMemFS()
	mustMkdir(t, m, "/d")
	f, err := m.OpenFile("/d/log", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	writeAll(t, f, []byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := m.SyncDir("/d"); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	writeAll(t, f, []byte("-volatile"))

	m.Crash()

	got := readBack(t, m, "/d/log")
	if string(got) != "durable" {
		t.Fatalf("after crash got %q, want %q", got, "durable")
	}
	// The pre-crash handle belongs to a dead process.
	if _, err := f.Write([]byte("x")); !errors.Is(err, errHandleLost) {
		t.Fatalf("stale handle write error = %v, want errHandleLost", err)
	}
	if err := f.Sync(); !errors.Is(err, errHandleLost) {
		t.Fatalf("stale handle sync error = %v, want errHandleLost", err)
	}
}

func TestMemFSUnsyncedCreateLostOnCrash(t *testing.T) {
	m := NewMemFS()
	mustMkdir(t, m, "/d")
	f, err := m.OpenFile("/d/new", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	writeAll(t, f, []byte("x"))
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// File data synced but the directory entry never was: the file itself
	// vanishes, as after a real power cut.
	m.Crash()
	if _, err := m.ReadFile("/d/new"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("unsynced create survived crash: err=%v", err)
	}
}

func TestMemFSRenameDurabilityRequiresSyncDir(t *testing.T) {
	setup := func(t *testing.T) *MemFS {
		m := NewMemFS()
		mustMkdir(t, m, "/d")
		f, err := m.OpenFile("/d/old", os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatalf("OpenFile: %v", err)
		}
		writeAll(t, f, []byte("payload"))
		if err := f.Sync(); err != nil {
			t.Fatalf("Sync: %v", err)
		}
		if err := m.SyncDir("/d"); err != nil {
			t.Fatalf("SyncDir: %v", err)
		}
		f.Close()
		if err := m.Rename("/d/old", "/d/new"); err != nil {
			t.Fatalf("Rename: %v", err)
		}
		return m
	}

	t.Run("before dirsync rename reverts", func(t *testing.T) {
		m := setup(t)
		m.Crash()
		if got := readBack(t, m, "/d/old"); string(got) != "payload" {
			t.Fatalf("old path lost: %q", got)
		}
		if _, err := m.ReadFile("/d/new"); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("unsynced rename survived crash: err=%v", err)
		}
	})

	t.Run("after dirsync rename survives", func(t *testing.T) {
		m := setup(t)
		if err := m.SyncDir("/d"); err != nil {
			t.Fatalf("SyncDir: %v", err)
		}
		m.Crash()
		if got := readBack(t, m, "/d/new"); string(got) != "payload" {
			t.Fatalf("synced rename lost: %q", got)
		}
		if _, err := m.ReadFile("/d/old"); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("old path resurrected: err=%v", err)
		}
	})
}

func TestMemFSTruncateAndAppend(t *testing.T) {
	m := NewMemFS()
	mustMkdir(t, m, "/d")
	f, err := m.OpenFile("/d/f", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	writeAll(t, f, []byte("0123456789"))
	if err := f.Truncate(4); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	f.Close()
	if got := readBack(t, m, "/d/f"); string(got) != "0123" {
		t.Fatalf("after truncate: %q", got)
	}
	g, err := m.OpenFile("/d/f", os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("reopen append: %v", err)
	}
	writeAll(t, g, []byte("AB"))
	g.Close()
	if got := readBack(t, m, "/d/f"); string(got) != "0123AB" {
		t.Fatalf("after append: %q", got)
	}
}

// TestMemFSWriteFileAtomic drives the real atomic-write primitive over the
// in-memory filesystem and checks the crash contract it promises: old or
// new, never torn, and no temp debris after a completed write.
func TestMemFSWriteFileAtomic(t *testing.T) {
	m := NewMemFS()
	mustMkdir(t, m, "/d")
	if err := fsio.WriteFileAtomicFS(m, "/d/ckpt", []byte("v1"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomicFS: %v", err)
	}
	m.Crash()
	if got := readBack(t, m, "/d/ckpt"); string(got) != "v1" {
		t.Fatalf("atomic write not durable after crash: %q", got)
	}
	if err := fsio.WriteFileAtomicFS(m, "/d/ckpt", []byte("v2-longer"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomicFS: %v", err)
	}
	m.Crash()
	if got := readBack(t, m, "/d/ckpt"); string(got) != "v2-longer" {
		t.Fatalf("replacement not durable after crash: %q", got)
	}
	ents, err := m.ReadDir("/d")
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(ents) != 1 || ents[0].Name() != "ckpt" {
		t.Fatalf("temp debris left behind: %v", ents)
	}
}

func TestWindowPlanFaultsExactOps(t *testing.T) {
	m := NewMemFS()
	mustMkdir(t, m, "/d")
	ffs := Wrap(m, Plan{Kind: KindEIO, Start: 2, Count: 1})
	f, err := ffs.OpenFile("/d/f", os.O_CREATE|os.O_WRONLY, 0o644) // op 0: create
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Write([]byte("a")); err != nil { // op 1: write
		t.Fatalf("op 1 faulted early: %v", err)
	}
	if _, err := f.Write([]byte("b")); !errors.Is(err, syscall.EIO) { // op 2: faulted
		t.Fatalf("op 2 error = %v, want EIO", err)
	}
	if _, err := f.Write([]byte("c")); err != nil { // op 3: clean again
		t.Fatalf("op 3 faulted late: %v", err)
	}
	if got := ffs.Ops(); got != 4 {
		t.Fatalf("Ops = %d, want 4", got)
	}
	if got := ffs.Injected(); got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
}

func TestShortWritePersistsPrefix(t *testing.T) {
	m := NewMemFS()
	mustMkdir(t, m, "/d")
	ffs := Wrap(m, Plan{Kind: KindShortWrite, Start: 1, Count: 1})
	f, err := ffs.OpenFile("/d/f", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err = %v, want io.ErrShortWrite", err)
	}
	if n != 5 {
		t.Fatalf("short write length = %d, want 5", n)
	}
	if got := readBack(t, m, "/d/f"); string(got) != "01234" {
		t.Fatalf("persisted bytes = %q, want the written prefix", got)
	}
}

func TestENOSPCKind(t *testing.T) {
	m := NewMemFS()
	mustMkdir(t, m, "/d")
	ffs := Wrap(m, Plan{Kind: KindENOSPC, Start: 0, Count: -1})
	if _, err := ffs.OpenFile("/d/f", os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
}

func TestPowerCutKillsEverything(t *testing.T) {
	m := NewMemFS()
	mustMkdir(t, m, "/d")
	ffs := Wrap(m, Plan{Kind: KindPowerCut, Start: 2, Count: 1})
	f, err := ffs.OpenFile("/d/f", os.O_CREATE|os.O_WRONLY, 0o644) // op 0
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Write([]byte("a")); err != nil { // op 1
		t.Fatalf("pre-cut write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrPowerLost) { // op 2: lights out
		t.Fatalf("sync error = %v, want ErrPowerLost", err)
	}
	if !ffs.Dead() {
		t.Fatal("Dead() = false after power cut")
	}
	// Everything after the cut fails, faulted class or not.
	if _, err := f.Write([]byte("b")); !errors.Is(err, ErrPowerLost) {
		t.Fatalf("post-cut write error = %v, want ErrPowerLost", err)
	}
	if _, err := ffs.ReadFile("/d/f"); !errors.Is(err, ErrPowerLost) {
		t.Fatalf("post-cut read error = %v, want ErrPowerLost", err)
	}
	// Reboot: crash the memfs, power the wrapper back on.
	m.Crash()
	ffs.PowerOn()
	if _, err := ffs.ReadFile("/d/f"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("unsynced create survived power cut: err=%v", err)
	}
}

func TestRatePlanDeterministic(t *testing.T) {
	run := func() (int64, []int64) {
		m := NewMemFS()
		mustMkdir(t, m, "/d")
		ffs := Wrap(m, Plan{Kind: KindEIO, Rate: 0.3, Seed: 42})
		f, err := ffs.OpenFile("/d/f", os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			// The create itself may fault; retry without the fault plan to
			// get a handle, then restore it.
			ffs.SetPlan(Plan{})
			f, err = ffs.OpenFile("/d/f", os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatalf("OpenFile: %v", err)
			}
			ffs.SetPlan(Plan{Kind: KindEIO, Rate: 0.3, Seed: 42})
		}
		var faulted []int64
		for i := 0; i < 200; i++ {
			op := ffs.Ops()
			if _, err := f.Write([]byte("x")); err != nil {
				faulted = append(faulted, op)
			}
		}
		return ffs.Injected(), faulted
	}
	inj1, seq1 := run()
	inj2, seq2 := run()
	if inj1 == 0 {
		t.Fatal("rate 0.3 over 200 ops injected nothing")
	}
	if inj1 != inj2 || len(seq1) != len(seq2) {
		t.Fatalf("nondeterministic injection: %d vs %d faults", inj1, inj2)
	}
	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("fault sequence diverged at %d: %d vs %d", i, seq1[i], seq2[i])
		}
	}
	// ~30% of 200 with generous slack.
	if inj1 < 20 || inj1 > 120 {
		t.Fatalf("rate 0.3 injected %d/200 — selection looks broken", inj1)
	}
}

func TestMaskRestrictsFaults(t *testing.T) {
	m := NewMemFS()
	mustMkdir(t, m, "/d")
	// Only syncs fault; writes sail through.
	ffs := Wrap(m, Plan{Kind: KindEIO, Start: 0, Count: -1, Mask: MaskOf(OpSync)})
	f, err := ffs.OpenFile("/d/f", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Write([]byte("a")); err != nil {
		t.Fatalf("masked write faulted: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync error = %v, want EIO", err)
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindEIO, KindENOSPC, KindShortWrite, KindPowerCut, KindMix} {
		got, err := KindFromString(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v: got %v err %v", k, got, err)
		}
	}
	if _, err := KindFromString("bogus"); err == nil {
		t.Fatal("bogus kind parsed")
	}
}

// TestFaultFSOverRealDisk sanity-checks the wrapper composes with fsio.OS —
// the configuration the CI kill-loop smoke uses.
func TestFaultFSOverRealDisk(t *testing.T) {
	dir := t.TempDir()
	ffs := Wrap(fsio.OS, Plan{Kind: KindEIO, Start: 1, Count: 1})
	path := filepath.Join(dir, "f")
	f, err := ffs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644) // op 0
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.EIO) { // op 1
		t.Fatalf("err = %v, want EIO", err)
	}
	if _, err := f.Write([]byte("y")); err != nil { // op 2 clean
		t.Fatalf("post-window write: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "y" {
		t.Fatalf("real file contents %q err %v", data, err)
	}
}
