package diskfaults

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"daasscale/internal/fsio"
)

// MemFS is an in-memory fsio.FS that models durability the way a real
// disk does under power loss, CrashMonkey-style: every file keeps two
// images — the live bytes (what reads and writes see) and the synced
// prefix (what an fsync has made durable) — and every directory keeps two
// entry maps (live and synced, advanced by SyncDir). Crash discards
// everything volatile: files revert to their last-synced contents,
// un-synced creates and renames un-happen, and handles opened before the
// crash are dead. That lets the crash-consistency harness simulate a
// power cut at any operation boundary without killing the test process.
//
// MemFS is goroutine-safe; one mutex covers the whole tree (the workloads
// it serves are fsync-bound, not lock-bound).
type MemFS struct {
	mu      sync.Mutex
	dirs    map[string]*memDir
	tmpSeq  int
	epoch   int
	crashes int
}

// memNode is one file: live contents and the contents the last fsync made
// durable.
type memNode struct {
	live   []byte
	synced []byte
	mode   os.FileMode
}

// memDir is one directory: live entries and the entries the last SyncDir
// made durable. Entries share *memNode identity, so a rename that moves a
// node keeps the node's own sync state.
type memDir struct {
	live   map[string]*memNode
	synced map[string]*memNode
}

// NewMemFS builds an empty in-memory filesystem with a root directory.
func NewMemFS() *MemFS {
	m := &MemFS{dirs: make(map[string]*memDir)}
	m.dirs["/"] = newMemDir()
	return m
}

func newMemDir() *memDir {
	return &memDir{live: make(map[string]*memNode), synced: make(map[string]*memNode)}
}

// Crash simulates a power cut: every directory reverts to its last
// SyncDir'd entry set, every file to its last fsync'd contents, and every
// handle opened before the crash fails all further operations (the
// process holding it is, in the scenario being modeled, dead). The
// filesystem is immediately usable again — the harness "restarts the
// machine" by simply opening fresh handles.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.epoch++
	m.crashes++
	for _, d := range m.dirs {
		d.live = make(map[string]*memNode, len(d.synced))
		for name, n := range d.synced {
			d.live[name] = n
		}
	}
	// Revert node contents. Nodes are shared across maps, so walk the
	// (restored) live views once.
	seen := make(map[*memNode]bool)
	for _, d := range m.dirs {
		for _, n := range d.live {
			if !seen[n] {
				seen[n] = true
				n.live = append([]byte(nil), n.synced...)
			}
		}
	}
}

// Crashes reports how many power cuts have been simulated.
func (m *MemFS) Crashes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashes
}

func notExist(op, name string) error {
	return &os.PathError{Op: op, Path: name, Err: os.ErrNotExist}
}

// dir returns the directory holding name, or nil.
func (m *MemFS) dir(name string) *memDir {
	return m.dirs[filepath.Clean(filepath.Dir(name))]
}

// MkdirAll creates path and any missing parents. Directory creation is
// modeled as immediately durable — the harness targets file-data and
// rename durability, and every caller creates its directories once at
// startup, outside the faulted window.
func (m *MemFS) MkdirAll(path string, _ os.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := filepath.Clean(path)
	for {
		if _, ok := m.dirs[p]; !ok {
			m.dirs[p] = newMemDir()
		}
		parent := filepath.Dir(p)
		if parent == p {
			return nil
		}
		p = parent
	}
}

// OpenFile opens (or with os.O_CREATE creates) name.
func (m *MemFS) OpenFile(name string, flag int, perm os.FileMode) (fsio.File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.dir(name)
	if d == nil {
		return nil, notExist("open", name)
	}
	base := filepath.Base(name)
	n, ok := d.live[base]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, notExist("open", name)
		}
		n = &memNode{mode: perm}
		d.live[base] = n
	}
	if flag&os.O_TRUNC != 0 {
		n.live = nil
	}
	h := &memFile{fs: m, node: n, name: name, epoch: m.epoch}
	if flag&os.O_APPEND != 0 {
		h.pos = int64(len(n.live))
	}
	return h, nil
}

// CreateTemp creates a unique temp file in dir, substituting the last "*"
// of pattern with a sequence number.
func (m *MemFS) CreateTemp(dir, pattern string) (fsio.File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.dirs[filepath.Clean(dir)]
	if d == nil {
		return nil, notExist("createtemp", dir)
	}
	prefix, suffix := pattern, ""
	if i := strings.LastIndexByte(pattern, '*'); i >= 0 {
		prefix, suffix = pattern[:i], pattern[i+1:]
	}
	for {
		m.tmpSeq++
		base := fmt.Sprintf("%s%d%s", prefix, m.tmpSeq, suffix)
		if _, taken := d.live[base]; taken {
			continue
		}
		n := &memNode{mode: 0o600}
		d.live[base] = n
		return &memFile{fs: m, node: n, name: filepath.Join(dir, base), epoch: m.epoch}, nil
	}
}

// Rename moves oldpath to newpath in the live view; the move becomes
// durable only once the parent directory is SyncDir'd — until then a
// Crash reverts it, exactly like a real rename before a directory fsync.
func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	od, nd := m.dir(oldpath), m.dir(newpath)
	if od == nil || nd == nil {
		return notExist("rename", oldpath)
	}
	n, ok := od.live[filepath.Base(oldpath)]
	if !ok {
		return notExist("rename", oldpath)
	}
	delete(od.live, filepath.Base(oldpath))
	nd.live[filepath.Base(newpath)] = n
	return nil
}

// Remove deletes name from the live view.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.dir(name)
	if d == nil {
		return notExist("remove", name)
	}
	base := filepath.Base(name)
	if _, ok := d.live[base]; !ok {
		return notExist("remove", name)
	}
	delete(d.live, base)
	return nil
}

// ReadFile returns a copy of name's live contents.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.dir(name)
	if d == nil {
		return nil, notExist("readfile", name)
	}
	n, ok := d.live[filepath.Base(name)]
	if !ok {
		return nil, notExist("readfile", name)
	}
	return append([]byte(nil), n.live...), nil
}

// ReadDir lists name's live entries in sorted order.
func (m *MemFS) ReadDir(name string) ([]os.DirEntry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.dirs[filepath.Clean(name)]
	if d == nil {
		return nil, notExist("readdir", name)
	}
	names := make([]string, 0, len(d.live))
	for base := range d.live {
		names = append(names, base)
	}
	sort.Strings(names)
	ents := make([]os.DirEntry, len(names))
	for i, base := range names {
		ents[i] = memDirEntry{name: base, node: d.live[base]}
	}
	return ents, nil
}

// SyncDir makes the directory's current entry set durable: creates,
// removes, and renames up to this point survive a Crash.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.dirs[filepath.Clean(dir)]
	if d == nil {
		return notExist("syncdir", dir)
	}
	d.synced = make(map[string]*memNode, len(d.live))
	for name, n := range d.live {
		d.synced[name] = n
	}
	return nil
}

// memFile is one open handle: a position over a node. Handles opened
// before a Crash belong to a dead process and fail every operation.
type memFile struct {
	fs     *MemFS
	node   *memNode
	name   string
	pos    int64
	epoch  int
	closed bool
}

var errHandleLost = fmt.Errorf("diskfaults: file handle lost in power cut")

// check guards every operation against closed and pre-crash handles; it
// must be called with fs.mu held.
func (f *memFile) check() error {
	if f.closed {
		return os.ErrClosed
	}
	if f.epoch != f.fs.epoch {
		return errHandleLost
	}
	return nil
}

func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return 0, err
	}
	if f.pos >= int64(len(f.node.live)) {
		return 0, io.EOF
	}
	n := copy(p, f.node.live[f.pos:])
	f.pos += int64(n)
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return 0, err
	}
	end := f.pos + int64(len(p))
	if end > int64(len(f.node.live)) {
		grown := make([]byte, end)
		copy(grown, f.node.live)
		f.node.live = grown
	}
	copy(f.node.live[f.pos:end], p)
	f.pos = end
	return len(p), nil
}

func (f *memFile) Seek(offset int64, whence int) (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return 0, err
	}
	switch whence {
	case io.SeekStart:
		f.pos = offset
	case io.SeekCurrent:
		f.pos += offset
	case io.SeekEnd:
		f.pos = int64(len(f.node.live)) + offset
	default:
		return 0, fmt.Errorf("diskfaults: bad whence %d", whence)
	}
	if f.pos < 0 {
		return 0, fmt.Errorf("diskfaults: negative seek position")
	}
	return f.pos, nil
}

func (f *memFile) Name() string { return f.name }

func (f *memFile) Stat() (os.FileInfo, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return nil, err
	}
	return memFileInfo{name: filepath.Base(f.name), size: int64(len(f.node.live)), mode: f.node.mode}, nil
}

// Sync makes the file's current contents durable: a later Crash restores
// exactly these bytes.
func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return err
	}
	f.node.synced = append([]byte(nil), f.node.live...)
	return nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return err
	}
	if size < 0 {
		return fmt.Errorf("diskfaults: negative truncate size")
	}
	if size < int64(len(f.node.live)) {
		f.node.live = f.node.live[:size]
	} else {
		for int64(len(f.node.live)) < size {
			f.node.live = append(f.node.live, 0)
		}
	}
	return nil
}

func (f *memFile) Chmod(mode os.FileMode) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return err
	}
	f.node.mode = mode
	return nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	f.closed = true
	return nil
}

// memFileInfo / memDirEntry are the minimal metadata views the seam needs.
type memFileInfo struct {
	name string
	size int64
	mode os.FileMode
}

func (i memFileInfo) Name() string       { return i.name }
func (i memFileInfo) Size() int64        { return i.size }
func (i memFileInfo) Mode() os.FileMode  { return i.mode }
func (i memFileInfo) ModTime() time.Time { return time.Time{} }
func (i memFileInfo) IsDir() bool        { return false }
func (i memFileInfo) Sys() interface{}   { return nil }

type memDirEntry struct {
	name string
	node *memNode
}

func (e memDirEntry) Name() string      { return e.name }
func (e memDirEntry) IsDir() bool       { return false }
func (e memDirEntry) Type() fs.FileMode { return 0 }
func (e memDirEntry) Info() (fs.FileInfo, error) {
	return memFileInfo{name: e.name, size: int64(len(e.node.live)), mode: e.node.mode}, nil
}
