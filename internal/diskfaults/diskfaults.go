// Package diskfaults is the storage-fault layer behind the
// crash-consistency harness: a deterministic fault-injecting fsio.FS
// wrapper (EIO, ENOSPC, short writes, simulated power cuts) plus an
// in-memory filesystem (MemFS) that models per-file synced prefixes so a
// power cut can be simulated at any operation boundary.
//
// Determinism follows the repo-wide SplitSeed discipline: whether a given
// operation faults is a pure function of (plan, operation index), so a
// fault-point sweep replays exactly and a CI failure reproduces from the
// logged seed. Under concurrent callers the operation *order* is
// scheduling-dependent; the sweep harness serializes its workload, and
// the rate-mode CI smoke only needs "some deterministic faults", not a
// specific schedule.
package diskfaults

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"syscall"

	"daasscale/internal/exec"
	"daasscale/internal/fsio"
)

// Kind selects what a faulted operation returns.
type Kind uint8

const (
	// KindEIO fails the operation with syscall.EIO.
	KindEIO Kind = iota
	// KindENOSPC fails the operation with syscall.ENOSPC.
	KindENOSPC
	// KindShortWrite writes only a prefix of the data and returns
	// io.ErrShortWrite — the torn-frame generator. Non-write operations
	// degrade to EIO.
	KindShortWrite
	// KindPowerCut kills the disk: the faulted operation and every
	// operation after it fail with ErrPowerLost. The harness then calls
	// MemFS.Crash (or actually kills the process) and restarts.
	KindPowerCut
	// KindMix picks EIO, ENOSPC, or a short write per faulted operation,
	// deterministically from the operation index.
	KindMix
)

// String names the kind for logs.
func (k Kind) String() string {
	switch k {
	case KindEIO:
		return "eio"
	case KindENOSPC:
		return "enospc"
	case KindShortWrite:
		return "short"
	case KindPowerCut:
		return "powercut"
	case KindMix:
		return "mix"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromString parses a -fault-kind flag value.
func KindFromString(s string) (Kind, error) {
	for _, k := range []Kind{KindEIO, KindENOSPC, KindShortWrite, KindPowerCut, KindMix} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("diskfaults: unknown fault kind %q", s)
}

// Op classifies a faultable operation.
type Op uint8

const (
	// OpWrite is a file data write.
	OpWrite Op = iota
	// OpSync is a file fsync.
	OpSync
	// OpSyncDir is a directory fsync.
	OpSyncDir
	// OpCreate covers OpenFile-with-O_CREATE and CreateTemp.
	OpCreate
	// OpRename is a rename.
	OpRename
	// OpRemove is an unlink.
	OpRemove
	// OpTruncate is a file truncate (the ledger's recovery path).
	OpTruncate
	numOps
)

// OpMask selects which operation classes a plan may fault.
type OpMask uint16

// MaskOf builds a mask from op classes.
func MaskOf(ops ...Op) OpMask {
	var m OpMask
	for _, op := range ops {
		m |= 1 << op
	}
	return m
}

// DefaultMask faults every mutating operation class: writes, syncs,
// directory syncs, creates, renames, removes, truncates. Reads are never
// faulted — the invariants under test are about what survives on disk,
// and a read fault cannot lose data.
const DefaultMask = OpMask(1<<numOps - 1)

// Plan describes which operations fault and how. The zero Plan faults
// nothing (the wrapper still counts operations, which is how a sweep
// discovers its fault points).
//
// Two selection modes, combinable:
//   - Window: operations with index in [Start, Start+Count) fault
//     (Count < 0 means every operation from Start on — a disk that stays
//     broken).
//   - Rate: with Rate > 0, each operation faults with probability Rate,
//     decided by SplitSeed(Seed, index) — deterministic per index.
type Plan struct {
	// Kind is what a faulted operation returns.
	Kind Kind
	// Start is the first faulted operation index (window mode).
	Start int64
	// Count is the window length; 0 disables the window, < 0 never ends.
	Count int64
	// Rate is the per-operation fault probability (rate mode; 0 disables).
	Rate float64
	// Seed derives the rate mode's per-index decisions.
	Seed int64
	// Mask restricts faultable classes (0 = DefaultMask).
	Mask OpMask
}

// ErrPowerLost is what every operation returns once a KindPowerCut fault
// has fired: the machine is off.
var ErrPowerLost = errors.New("diskfaults: power lost")

// FS wraps an inner fsio.FS and injects faults per a Plan. Wrap it around
// fsio.OS for real-disk fault testing (kill -9 supplies the crashes) or
// around a MemFS for in-process power-cut sweeps.
type FS struct {
	inner fsio.FS

	mu       sync.Mutex
	plan     Plan
	ops      int64
	injected int64
	dead     bool
}

// Wrap builds a fault-injecting view of inner.
func Wrap(inner fsio.FS, plan Plan) *FS {
	return &FS{inner: inner, plan: plan}
}

// Ops returns how many faultable operations have been observed (masked or
// not) — the sweep's coordinate space.
func (f *FS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Injected returns how many faults have fired.
func (f *FS) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Dead reports whether a power-cut fault has fired.
func (f *FS) Dead() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead
}

// SetPlan replaces the plan (op counting continues). PowerOn is needed
// separately to revive a dead disk.
func (f *FS) SetPlan(plan Plan) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plan = plan
}

// PowerOn clears the dead state after a power cut — the harness calls it
// together with MemFS.Crash to model the machine rebooting.
func (f *FS) PowerOn() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dead = false
}

// decide counts one faultable operation and returns the error to inject,
// if any. For KindShortWrite it returns errShortWrite, which Write
// translates into a partial write; other ops degrade it to EIO.
func (f *FS) decide(op Op) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return ErrPowerLost
	}
	idx := f.ops
	f.ops++
	mask := f.plan.Mask
	if mask == 0 {
		mask = DefaultMask
	}
	if mask&(1<<op) == 0 {
		return nil
	}
	hit := false
	if f.plan.Count != 0 && idx >= f.plan.Start && (f.plan.Count < 0 || idx < f.plan.Start+f.plan.Count) {
		hit = true
	}
	if !hit && f.plan.Rate > 0 {
		// SplitSeed's output is well mixed; the top 53 bits give a uniform
		// fraction in [0, 1) that is a pure function of (seed, index).
		u := uint64(exec.SplitSeed(f.plan.Seed, idx)) >> 11
		if float64(u)/float64(1<<53) < f.plan.Rate {
			hit = true
		}
	}
	if !hit {
		return nil
	}
	f.injected++
	kind := f.plan.Kind
	if kind == KindMix {
		kind = []Kind{KindEIO, KindENOSPC, KindShortWrite}[uint64(exec.SplitSeed(f.plan.Seed+1, idx))%3]
	}
	switch kind {
	case KindENOSPC:
		return fmt.Errorf("diskfaults: injected: %w", syscall.ENOSPC)
	case KindShortWrite:
		return errShortWrite
	case KindPowerCut:
		f.dead = true
		return ErrPowerLost
	default:
		return fmt.Errorf("diskfaults: injected: %w", syscall.EIO)
	}
}

// errShortWrite is the internal marker decide returns for a short-write
// fault; Write converts it into a real partial write + io.ErrShortWrite,
// non-write operations degrade it to EIO.
var errShortWrite = errors.New("diskfaults: short write marker")

func degradeShort(err error) error {
	if errors.Is(err, errShortWrite) {
		return fmt.Errorf("diskfaults: injected: %w", syscall.EIO)
	}
	return err
}

// OpenFile implements fsio.FS. Creation faults; plain opens do not.
func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (fsio.File, error) {
	if flag&os.O_CREATE != 0 {
		if err := f.decide(OpCreate); err != nil {
			return nil, degradeShort(err)
		}
	} else if f.Dead() {
		return nil, ErrPowerLost
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// CreateTemp implements fsio.FS.
func (f *FS) CreateTemp(dir, pattern string) (fsio.File, error) {
	if err := f.decide(OpCreate); err != nil {
		return nil, degradeShort(err)
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// Rename implements fsio.FS.
func (f *FS) Rename(oldpath, newpath string) error {
	if err := f.decide(OpRename); err != nil {
		return degradeShort(err)
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements fsio.FS.
func (f *FS) Remove(name string) error {
	if err := f.decide(OpRemove); err != nil {
		return degradeShort(err)
	}
	return f.inner.Remove(name)
}

// ReadFile implements fsio.FS; reads are not faulted, but a dead disk
// serves nothing.
func (f *FS) ReadFile(name string) ([]byte, error) {
	if f.Dead() {
		return nil, ErrPowerLost
	}
	return f.inner.ReadFile(name)
}

// ReadDir implements fsio.FS.
func (f *FS) ReadDir(name string) ([]os.DirEntry, error) {
	if f.Dead() {
		return nil, ErrPowerLost
	}
	return f.inner.ReadDir(name)
}

// MkdirAll implements fsio.FS; directory creation happens once at service
// startup and is not faulted.
func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	if f.Dead() {
		return ErrPowerLost
	}
	return f.inner.MkdirAll(path, perm)
}

// SyncDir implements fsio.FS.
func (f *FS) SyncDir(dir string) error {
	if err := f.decide(OpSyncDir); err != nil {
		return degradeShort(err)
	}
	return f.inner.SyncDir(dir)
}

// faultFile intercepts the mutating file operations.
type faultFile struct {
	fs    *FS
	inner fsio.File
}

func (f *faultFile) Read(p []byte) (int, error) {
	if f.fs.Dead() {
		return 0, ErrPowerLost
	}
	return f.inner.Read(p)
}

// Write injects write faults. A short write persists a prefix of the data
// (half, rounded down) before failing — exactly the torn frame a real
// device can leave.
func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.fs.decide(OpWrite); err != nil {
		if errors.Is(err, errShortWrite) {
			n := len(p) / 2
			if n > 0 {
				if m, werr := f.inner.Write(p[:n]); werr != nil {
					return m, werr
				}
			}
			return n, io.ErrShortWrite
		}
		return 0, err
	}
	return f.inner.Write(p)
}

func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	if f.fs.Dead() {
		return 0, ErrPowerLost
	}
	return f.inner.Seek(offset, whence)
}

func (f *faultFile) Name() string { return f.inner.Name() }

func (f *faultFile) Stat() (os.FileInfo, error) {
	if f.fs.Dead() {
		return nil, ErrPowerLost
	}
	return f.inner.Stat()
}

func (f *faultFile) Sync() error {
	if err := f.fs.decide(OpSync); err != nil {
		return degradeShort(err)
	}
	return f.inner.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if err := f.fs.decide(OpTruncate); err != nil {
		return degradeShort(err)
	}
	return f.inner.Truncate(size)
}

func (f *faultFile) Chmod(mode os.FileMode) error {
	if f.fs.Dead() {
		return ErrPowerLost
	}
	return f.inner.Chmod(mode)
}

// Close is never faulted: the harness needs a dead process's handles to
// be abandonable, and real close errors are covered by Sync faults.
func (f *faultFile) Close() error { return f.inner.Close() }
