package policy

import (
	"testing"

	"daasscale/internal/core"
	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
)

var cat = resource.LockStepCatalog()

func snapFor(c resource.Container, p95, cpuUtil float64) telemetry.Snapshot {
	var s telemetry.Snapshot
	s.Container = c.Name
	s.Step = c.Step
	s.Cost = c.Cost
	s.P95LatencyMs = p95
	s.AvgLatencyMs = p95 / 2
	s.Utilization[resource.CPU] = cpuUtil
	s.Utilization[resource.Memory] = 0.9
	return s
}

func TestStaticNeverChanges(t *testing.T) {
	p := NewStatic("Peak", cat.AtStep(7))
	if p.Name() != "Peak" {
		t.Errorf("name = %s", p.Name())
	}
	for i := 0; i < 5; i++ {
		d := p.Observe(snapFor(p.Container(), 10_000, 1.0))
		if d.Changed || d.Target.Name != "C7" {
			t.Fatalf("static policy changed: %+v", d)
		}
	}
}

func TestNewMax(t *testing.T) {
	p := NewMax(cat)
	if p.Container().Name != "C10" || p.Name() != "Max" {
		t.Errorf("Max = %s/%s", p.Name(), p.Container().Name)
	}
}

func TestTraceOracleFollowsSchedule(t *testing.T) {
	sched := []resource.Container{cat.AtStep(0), cat.AtStep(2), cat.AtStep(2), cat.AtStep(1)}
	p, err := NewTraceOracle(sched)
	if err != nil {
		t.Fatal(err)
	}
	if p.Container().Name != "C0" {
		t.Errorf("initial = %s", p.Container().Name)
	}
	d := p.Observe(telemetry.Snapshot{})
	if d.Target.Name != "C2" || !d.Changed {
		t.Errorf("step 1: %+v", d)
	}
	d = p.Observe(telemetry.Snapshot{})
	if d.Target.Name != "C2" || d.Changed {
		t.Errorf("step 2 should be unchanged: %+v", d)
	}
	d = p.Observe(telemetry.Snapshot{})
	if d.Target.Name != "C1" || !d.Changed {
		t.Errorf("step 3: %+v", d)
	}
	// Beyond the schedule: stick to the last entry.
	d = p.Observe(telemetry.Snapshot{})
	if d.Target.Name != "C1" || d.Changed {
		t.Errorf("beyond schedule: %+v", d)
	}
}

func TestTraceOracleRequiresSchedule(t *testing.T) {
	if _, err := NewTraceOracle(nil); err == nil {
		t.Error("empty schedule should fail")
	}
}

func TestUtilValidation(t *testing.T) {
	if _, err := NewUtil(cat, cat.Smallest(), UtilConfig{}); err == nil {
		t.Error("missing goal should fail")
	}
	p, err := NewUtil(cat, resource.Container{}, DefaultUtilConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	if p.Container().Name != "C0" {
		t.Errorf("default initial = %s", p.Container().Name)
	}
}

func TestUtilScalesUpOnBadLatencyWithUse(t *testing.T) {
	p, _ := NewUtil(cat, cat.AtStep(1), DefaultUtilConfig(100))
	d := p.Observe(snapFor(p.Container(), 500, 0.8))
	if !d.Changed || p.Container().Step != 2 {
		t.Fatalf("first violation should scale one step: %s", p.Container().Name)
	}
	// Escalation: consecutive violations climb faster.
	d = p.Observe(snapFor(p.Container(), 500, 0.8))
	if p.Container().Step != 4 {
		t.Errorf("second consecutive violation should add 2 steps: %s", p.Container().Name)
	}
	d = p.Observe(snapFor(p.Container(), 500, 0.8))
	if p.Container().Step != 7 {
		t.Errorf("third consecutive violation should add 3 steps: %s", p.Container().Name)
	}
	if len(d.Explanations) == 0 {
		t.Error("util should explain its scale-ups")
	}
}

func TestUtilIgnoresIdleLatencyViolations(t *testing.T) {
	// Latency BAD but nothing utilized: per the rule, no scale-up.
	p, _ := NewUtil(cat, cat.AtStep(1), DefaultUtilConfig(100))
	d := p.Observe(snapFor(p.Container(), 500, 0.05))
	if d.Changed {
		t.Error("no utilization → no scale-up")
	}
}

func TestUtilCannotSeePastUtilization(t *testing.T) {
	// The core failure mode (Figure 13): a lock-bound workload with modest
	// utilization but BAD latency — Util keeps escalating anyway.
	p, _ := NewUtil(cat, cat.AtStep(1), DefaultUtilConfig(100))
	for i := 0; i < 5; i++ {
		p.Observe(snapFor(p.Container(), 400, 0.35))
	}
	if p.Container().Step < 8 {
		t.Errorf("lock-bound latency should have driven Util very high: %s", p.Container().Name)
	}
}

func TestUtilScalesDownAfterHold(t *testing.T) {
	cfg := DefaultUtilConfig(100)
	cfg.DownHoldIntervals = 3
	cfg.IgnoreMemoryForScaleDown = true
	p, _ := NewUtil(cat, cat.AtStep(5), cfg)
	for i := 0; i < 2; i++ {
		if d := p.Observe(snapFor(p.Container(), 20, 0.05)); d.Changed {
			t.Fatalf("scale-down before hold: interval %d", i)
		}
	}
	d := p.Observe(snapFor(p.Container(), 20, 0.05))
	if !d.Changed || p.Container().Step != 4 {
		t.Errorf("scale-down after hold: %s", p.Container().Name)
	}
	// Memory being "utilized" must not block the scale-down.
	if p.Container().Step != 4 {
		t.Error("memory cache fill blocked scale-down")
	}
}

func TestUtilMemoryRatchet(t *testing.T) {
	// The default Util tests every resource, and memory (cache fill) never
	// reads LOW — so it freezes at its size (the paper's ratchet effect).
	p, _ := NewUtil(cat, cat.AtStep(5), DefaultUtilConfig(100))
	for i := 0; i < 10; i++ {
		p.Observe(snapFor(p.Container(), 20, 0.05)) // memory util 0.9 in snapFor
	}
	if p.Container().Step != 5 {
		t.Errorf("memory-aware Util should freeze at its size: %s", p.Container().Name)
	}
}

func TestUtilViolationStreakResets(t *testing.T) {
	p, _ := NewUtil(cat, cat.AtStep(1), DefaultUtilConfig(100))
	p.Observe(snapFor(p.Container(), 500, 0.8)) // +1 → C2
	p.Observe(snapFor(p.Container(), 50, 0.8))  // GOOD: streak resets
	p.Observe(snapFor(p.Container(), 500, 0.8)) // +1 again → C3
	if p.Container().Step != 3 {
		t.Errorf("streak should reset after a good interval: %s", p.Container().Name)
	}
}

func TestAutoAdapter(t *testing.T) {
	scaler, err := core.New(core.Config{Catalog: cat, Initial: cat.AtStep(3)})
	if err != nil {
		t.Fatal(err)
	}
	p := NewAuto(scaler)
	if p.Name() != "Auto" || p.Container().Name != "C3" {
		t.Errorf("adapter basics: %s %s", p.Name(), p.Container().Name)
	}
	if p.Scaler() != scaler {
		t.Error("Scaler accessor")
	}
	d := p.Observe(snapFor(p.Container(), 50, 0.5))
	if d.Target.Name != "C3" {
		t.Errorf("warmup decision target = %s", d.Target.Name)
	}
}

func TestScheduledPolicy(t *testing.T) {
	if _, err := NewScheduled(nil); err == nil {
		t.Error("empty schedule should fail")
	}
	if _, err := NewScheduled([]ScheduleEntry{{StartMinute: -1, Container: cat.AtStep(1)}}); err == nil {
		t.Error("negative start should fail")
	}
	if _, err := NewScheduled([]ScheduleEntry{
		{StartMinute: 60, Container: cat.AtStep(1)},
		{StartMinute: 60, Container: cat.AtStep(2)},
	}); err == nil {
		t.Error("duplicate start should fail")
	}
	// Business hours big, nights small.
	p, err := NewScheduled([]ScheduleEntry{
		{StartMinute: 9 * 60, Container: cat.AtStep(6)},
		{StartMinute: 19 * 60, Container: cat.AtStep(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "Sched" {
		t.Errorf("name = %s", p.Name())
	}
	// Minute 0 wraps to the previous evening's entry.
	if p.Container().Name != "C1" {
		t.Errorf("midnight container = %s, want C1", p.Container().Name)
	}
	changes := 0
	for m := 0; m < 2*MinutesPerDay; m++ {
		d := p.Observe(telemetry.Snapshot{})
		if d.Changed {
			changes++
		}
		hour := (m + 1) % MinutesPerDay / 60
		want := "C1"
		if hour >= 9 && hour < 19 {
			want = "C6"
		}
		if d.Target.Name != want {
			t.Fatalf("minute %d (hour %d): container %s, want %s", m, hour, d.Target.Name, want)
		}
	}
	if changes != 4 {
		t.Errorf("changes over two days = %d, want 4", changes)
	}
}
