package policy

import "fmt"

// InflationExplainThreshold is the dominant wait-inflation multiplier
// above which a decision record's explanation stream notes the noisy
// neighbors: below it the interference is within measurement noise and
// narrating it would only drown the estimator's §4 explanations.
const InflationExplainThreshold = 1.05

// ContentionExplanation narrates node-level interference for the
// `-explain` surface, in the same voice as the estimator's rule-firing
// explanations. Call it when the dominant inflation multiplier exceeds
// InflationExplainThreshold.
func ContentionExplanation(node int, mult float64) string {
	return fmt.Sprintf("contention: node %d neighbors inflate waits ×%.2f — latency slack is interference, not under-provisioning", node, mult)
}
