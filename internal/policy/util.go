package policy

import (
	"fmt"

	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
)

// UtilConfig tunes the utilization-only autoscaler.
type UtilConfig struct {
	// GoalMs is the p95 latency goal (required — Util is an online policy
	// driven by latency and utilization, Section 7.2.2).
	GoalMs float64
	// UtilLow is the utilization below which a resource is LOW (scale-down
	// evidence); UtilGood is the level above which utilization is
	// considered GOOD/HIGH (scale-up evidence that the resource is in use).
	UtilLow, UtilGood float64
	// DownHoldIntervals is how many consecutive quiet intervals are needed
	// before scaling down one step.
	DownHoldIntervals int
	// IgnoreMemoryForScaleDown, when true, excludes memory utilization from
	// the scale-down test. The default (false) matches the paper's Util,
	// which tests "utilization of every resource": database caches keep
	// memory utilized ≥ LOW forever, so Util effectively ratchets upward —
	// the root of its cost disadvantage. Setting true emulates VM
	// autoscalers keyed on CPU/I/O only (used by an ablation).
	IgnoreMemoryForScaleDown bool
}

// DefaultUtilConfig returns the configuration used in the experiments.
func DefaultUtilConfig(goalMs float64) UtilConfig {
	return UtilConfig{
		GoalMs:            goalMs,
		UtilLow:           0.30,
		UtilGood:          0.10,
		DownHoldIntervals: 8,
	}
}

// Util is the utilization-driven online autoscaler the paper compares
// against: it emulates the auto-scaling offerings of today's cloud
// platforms, translated to container sizes (Section 7.2.2). The rules:
//
//   - latency BAD and some resource's utilization GOOD or HIGH → scale up.
//     Consecutive violations escalate the step (each interval of continued
//     degradation scales further — the behaviour that makes Util "end up
//     scaling much higher" in Figure 13 when the bottleneck is not a
//     resource at all);
//   - latency GOOD and utilization LOW → scale down one step.
//
// Util looks only at utilization and latency: it cannot distinguish unmet
// resource demand from waits on logical resources (locks), which is the
// root of its cost disadvantage.
type Util struct {
	cfg  UtilConfig
	cat  *resource.Catalog
	cur  resource.Container
	bad  int // consecutive BAD intervals
	idle int // consecutive quiet intervals
}

// NewUtil creates the utilization autoscaler starting at the given
// container.
func NewUtil(cat *resource.Catalog, initial resource.Container, cfg UtilConfig) (*Util, error) {
	if cfg.GoalMs <= 0 {
		return nil, fmt.Errorf("policy: Util requires a positive latency goal, got %v", cfg.GoalMs)
	}
	if cfg.UtilLow <= 0 {
		cfg.UtilLow = 0.30
	}
	if cfg.UtilGood <= 0 {
		cfg.UtilGood = cfg.UtilLow
	}
	if cfg.DownHoldIntervals <= 0 {
		cfg.DownHoldIntervals = 3
	}
	if initial.Name == "" {
		initial = cat.Smallest()
	}
	return &Util{cfg: cfg, cat: cat, cur: initial}, nil
}

// Name implements Policy.
func (p *Util) Name() string { return "Util" }

// Container implements Policy.
func (p *Util) Container() resource.Container { return p.cur }

// Observe implements Policy.
func (p *Util) Observe(s telemetry.Snapshot) Decision {
	d := Decision{Target: p.cur}
	latencyBad := s.P95LatencyMs > p.cfg.GoalMs

	// Scale-up test: latency violated and the workload is actually using
	// resources (utilization not LOW everywhere — the policy's only notion
	// of "demand").
	anyInUse := false
	for _, k := range resource.Kinds {
		if k == resource.Memory {
			continue // cache fill is not load
		}
		if s.Utilization[k] >= p.cfg.UtilGood {
			anyInUse = true
		}
	}
	if latencyBad && anyInUse {
		p.bad++
		p.idle = 0
		step := p.cat.StepOf(p.cur) + p.bad // escalate while degraded
		next := p.cat.AtStep(step)
		if next.Name != p.cur.Name {
			d.Changed = true
			d.Explanations = append(d.Explanations,
				fmt.Sprintf("util: latency %.0fms > goal %.0fms for %d interval(s), scaling %s → %s",
					s.P95LatencyMs, p.cfg.GoalMs, p.bad, p.cur.Name, next.Name))
			p.cur = next
		}
		d.Target = p.cur
		return d
	}
	p.bad = 0

	// Scale-down test: latency met and utilization LOW on the considered
	// resources.
	allLow := true
	for _, k := range resource.Kinds {
		if k == resource.Memory && p.cfg.IgnoreMemoryForScaleDown {
			continue
		}
		if s.Utilization[k] >= p.cfg.UtilLow {
			allLow = false
		}
	}
	if !latencyBad && allLow {
		p.idle++
		if p.idle >= p.cfg.DownHoldIntervals {
			next := p.cat.AtStep(p.cat.StepOf(p.cur) - 1)
			if next.Name != p.cur.Name {
				d.Changed = true
				d.Explanations = append(d.Explanations,
					fmt.Sprintf("util: latency met and utilization LOW, scaling %s → %s", p.cur.Name, next.Name))
				p.cur = next
				p.idle = 0
			}
		}
	} else {
		p.idle = 0
	}
	d.Target = p.cur
	return d
}
