// Package policy defines the container-sizing policies the paper compares
// (Section 7.2): the Max gold standard, the offline Static (Peak / Avg)
// and Trace (demand-hugging oracle) baselines, the online utilization-only
// autoscaler Util that emulates today's cloud VM autoscalers, and an
// adapter exposing the paper's Auto (package core) behind the same
// interface.
package policy

import (
	"fmt"

	"daasscale/internal/core"
	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
)

// Decision is a policy's choice for the next billing interval.
type Decision struct {
	// Target is the container to run the next interval in.
	Target resource.Container
	// Changed reports whether Target differs from the previous interval.
	Changed bool
	// BalloonTargetMB, when > 0, asks the engine to limit memory use (only
	// the Auto policy ever sets it).
	BalloonTargetMB float64
	// Explanations narrates the decision, when the policy supports it.
	Explanations []string
}

// Policy chooses a container for each billing interval from the telemetry
// of the interval that just completed.
type Policy interface {
	// Name identifies the policy in reports ("Max", "Peak", "Util", ...).
	Name() string
	// Observe ingests the completed interval's snapshot and returns the
	// decision for the next interval.
	Observe(s telemetry.Snapshot) Decision
	// Container returns the currently selected container.
	Container() resource.Container
}

// Static pins a single container for the whole run: Max when given the
// largest container, or the offline Peak/Avg provisioning baselines when
// given a container derived from historical utilization.
type Static struct {
	name string
	cont resource.Container
}

// NewStatic creates a fixed-container policy.
func NewStatic(name string, c resource.Container) *Static {
	return &Static{name: name, cont: c}
}

// NewMax returns the gold-standard policy: the largest container the
// service offers (best latency, highest cost).
func NewMax(cat *resource.Catalog) *Static {
	return NewStatic("Max", cat.Largest())
}

// Name implements Policy.
func (p *Static) Name() string { return p.name }

// Observe implements Policy: the container never changes.
func (p *Static) Observe(telemetry.Snapshot) Decision { return Decision{Target: p.cont} }

// Container implements Policy.
func (p *Static) Container() resource.Container { return p.cont }

// TraceOracle replays a precomputed schedule of containers — the offline
// technique that "hugs" the demand curve using exact knowledge of the
// workload's resource requirements per interval (Section 7.2.1).
type TraceOracle struct {
	schedule []resource.Container
	idx      int
	cur      resource.Container
}

// NewTraceOracle creates the oracle from a per-interval schedule; the
// schedule must be non-empty. Intervals beyond the schedule reuse its last
// entry.
func NewTraceOracle(schedule []resource.Container) (*TraceOracle, error) {
	if len(schedule) == 0 {
		return nil, fmt.Errorf("policy: trace oracle requires a non-empty schedule")
	}
	return &TraceOracle{
		schedule: append([]resource.Container(nil), schedule...),
		cur:      schedule[0],
	}, nil
}

// Name implements Policy.
func (p *TraceOracle) Name() string { return "Trace" }

// Observe implements Policy: step to the next scheduled container.
func (p *TraceOracle) Observe(telemetry.Snapshot) Decision {
	p.idx++
	next := p.schedule[len(p.schedule)-1]
	if p.idx < len(p.schedule) {
		next = p.schedule[p.idx]
	}
	changed := next.Name != p.cur.Name
	p.cur = next
	return Decision{Target: next, Changed: changed}
}

// Container implements Policy.
func (p *TraceOracle) Container() resource.Container { return p.cur }

// Auto adapts the paper's auto-scaler (package core) to the Policy
// interface.
type Auto struct {
	scaler *core.AutoScaler
}

// NewAuto wraps a configured core.AutoScaler.
func NewAuto(scaler *core.AutoScaler) *Auto { return &Auto{scaler: scaler} }

// Name implements Policy.
func (p *Auto) Name() string { return "Auto" }

// Observe implements Policy.
func (p *Auto) Observe(s telemetry.Snapshot) Decision {
	d := p.scaler.Observe(s)
	return Decision{
		Target:          d.Target,
		Changed:         d.Changed,
		BalloonTargetMB: d.BalloonTargetMB,
		Explanations:    d.Explanations,
	}
}

// Container implements Policy.
func (p *Auto) Container() resource.Container { return p.scaler.Container() }

// Scaler exposes the wrapped auto-scaler (for budget inspection etc.).
func (p *Auto) Scaler() *core.AutoScaler { return p.scaler }
