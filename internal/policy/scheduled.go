package policy

import (
	"fmt"
	"sort"

	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
)

// ScheduleEntry pins a container from a given minute-of-day onward.
type ScheduleEntry struct {
	// StartMinute is the minute of the (simulated) day at which the entry
	// takes effect, in [0, MinutesPerDay).
	StartMinute int
	// Container to use from StartMinute until the next entry.
	Container resource.Container
}

// MinutesPerDay is the length of the scheduling day in billing intervals.
const MinutesPerDay = 1440

// Scheduled is the time-of-day scaling policy cloud platforms offer
// ("scale up at 9am, down at 7pm"): an application-agnostic baseline that
// works exactly as well as the operator's guess about the workload's clock.
// It reacts to nothing — bursts that ignore the schedule are served by
// whatever the schedule says.
type Scheduled struct {
	entries []ScheduleEntry
	cur     resource.Container
	minute  int
}

// NewScheduled creates the policy from schedule entries (any order; they
// are sorted by StartMinute). At least one entry is required; the entry
// with the largest StartMinute wraps around midnight.
func NewScheduled(entries []ScheduleEntry) (*Scheduled, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("policy: schedule requires at least one entry")
	}
	es := append([]ScheduleEntry(nil), entries...)
	sort.Slice(es, func(a, b int) bool { return es[a].StartMinute < es[b].StartMinute })
	for i, e := range es {
		if e.StartMinute < 0 || e.StartMinute >= MinutesPerDay {
			return nil, fmt.Errorf("policy: schedule entry %d start %d outside the day", i, e.StartMinute)
		}
		if i > 0 && e.StartMinute == es[i-1].StartMinute {
			return nil, fmt.Errorf("policy: duplicate schedule start %d", e.StartMinute)
		}
	}
	p := &Scheduled{entries: es}
	p.cur = p.at(0)
	return p, nil
}

// at returns the scheduled container for a minute of day.
func (p *Scheduled) at(minuteOfDay int) resource.Container {
	// The last entry not after the minute; before the first entry, the
	// schedule wraps to the last entry of the previous day.
	c := p.entries[len(p.entries)-1].Container
	for _, e := range p.entries {
		if e.StartMinute <= minuteOfDay {
			c = e.Container
		}
	}
	return c
}

// Name implements Policy.
func (p *Scheduled) Name() string { return "Sched" }

// Container implements Policy.
func (p *Scheduled) Container() resource.Container { return p.cur }

// Observe implements Policy: advance the clock one billing interval and
// follow the schedule.
func (p *Scheduled) Observe(telemetry.Snapshot) Decision {
	p.minute++
	next := p.at(p.minute % MinutesPerDay)
	changed := next.Name != p.cur.Name
	p.cur = next
	return Decision{Target: next, Changed: changed}
}
