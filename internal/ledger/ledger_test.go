package ledger

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"daasscale/internal/actuate"
	"daasscale/internal/core"
	"daasscale/internal/fabric"
	"daasscale/internal/faults"
	"daasscale/internal/loop"
	"daasscale/internal/policy"
	"daasscale/internal/resource"
	"daasscale/internal/sim"
	"daasscale/internal/telemetry"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

// randRecord builds a fully populated DecisionRecord from one RNG draw
// sequence, exercising every codec field including non-finite floats.
func randRecord(rng *rand.Rand) loop.DecisionRecord {
	strs := []string{"", "B2", "tenant-0042", "rule: p95 900ms > goal 500ms → scale up", "väit-λ"}
	str := func() string { return strs[rng.Intn(len(strs))] }
	f := func() float64 {
		switch rng.Intn(8) {
		case 0:
			return 0
		case 1:
			return math.Inf(1)
		case 2:
			return math.NaN()
		case 3:
			return -rng.Float64() * 1e6
		default:
			return rng.Float64() * 1e4
		}
	}
	var r loop.DecisionRecord
	r.Tenant = str()
	r.Interval = rng.Intn(1 << 20)
	r.Snapshot = telemetry.Snapshot{
		Interval:       rng.Intn(1 << 20),
		Container:      str(),
		Step:           rng.Intn(16),
		Cost:           f(),
		AvgLatencyMs:   f(),
		P95LatencyMs:   f(),
		Transactions:   f(),
		OfferedRPS:     f(),
		MemoryUsedMB:   f(),
		PhysicalReads:  f(),
		PhysicalWrites: f(),
	}
	for _, k := range resource.Kinds {
		r.Snapshot.Utilization[k] = f()
		r.Snapshot.UtilizationPeak[k] = f()
	}
	for c := range r.Snapshot.WaitMs {
		r.Snapshot.WaitMs[c] = f()
	}
	r.Actual, r.Target = str(), str()
	r.Changed, r.Observed, r.Submitted = rng.Intn(2) == 0, rng.Intn(2) == 0, rng.Intn(2) == 0
	r.BalloonTargetMB = f()
	if n := rng.Intn(4); n > 0 {
		for i := 0; i < n; i++ {
			r.Explanations = append(r.Explanations, str())
		}
	}
	r.Delivered = rng.Intn(4)
	r.Faults = faults.Stats{Intervals: rng.Intn(1000), Delivered: rng.Intn(1000)}
	for i := range r.Faults.Injected {
		r.Faults.Injected[i] = rng.Intn(100)
	}
	r.Actuation = actuate.Stats{
		Submitted: rng.Intn(50), Ops: rng.Intn(50), Attempts: rng.Intn(50),
		Retries: rng.Intn(50), Applied: rng.Intn(50), Throttled: rng.Intn(50),
		TransientFailures: rng.Intn(50), Refused: rng.Intn(50),
		Superseded: rng.Intn(50), Expired: rng.Intn(50),
		SumEffectIntervals: rng.Intn(500), MaxEffectIntervals: rng.Intn(50),
	}
	r.Node = rng.Intn(18) - 1 // −1 = off-fabric
	if r.Node >= 0 {
		for _, ch := range fabric.PressureChannels {
			r.NodePressure[ch] = f()
			r.WaitInflation[ch] = f()
		}
	}
	return r
}

// recordsEqual compares two records by canonical encoding, which treats
// NaN bit patterns exactly (DeepEqual would reject NaN == NaN).
func recordsEqual(a, b loop.DecisionRecord) bool {
	return bytes.Equal(EncodeDecision(&a), EncodeDecision(&b))
}

func TestDecisionCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		want := randRecord(rng)
		payload := EncodeDecision(&want)
		got, err := DecodeDecision(payload)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !recordsEqual(want, got) {
			t.Fatalf("record %d: round trip drifted\nwant %+v\ngot  %+v", i, want, got)
		}
		// Re-encoding the decoded record must be byte-identical — the
		// codec is canonical.
		if !bytes.Equal(payload, EncodeDecision(&got)) {
			t.Fatalf("record %d: re-encoding is not byte-identical", i)
		}
		// Any truncation of the payload must fail to decode.
		if _, err := DecodeDecision(payload[:len(payload)-1]); err == nil {
			t.Fatalf("record %d: truncated payload decoded", i)
		}
		// Trailing garbage must fail too.
		if _, err := DecodeDecision(append(append([]byte{}, payload...), 0xFF)); err == nil {
			t.Fatalf("record %d: payload with trailing bytes decoded", i)
		}
	}
}

func TestLineItemCodecRoundTrip(t *testing.T) {
	want := LineItem{Tenant: "t-7", Interval: 12, Container: "B4", Cost: 13.25}
	got, err := DecodeLineItem(EncodeLineItem(&want))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
	if _, err := DecodeLineItem(EncodeLineItem(&want)[:5]); err == nil {
		t.Fatal("truncated line item decoded")
	}
}

func writeTestLedger(t *testing.T, path string, recs []loop.DecisionRecord, opts ...WriterOption) {
	t.Helper()
	w, err := OpenWriter(path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	rec := &Recorder{W: w}
	for _, r := range recs {
		rec.Record(r)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriterReplayRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	recs := make([]loop.DecisionRecord, 40)
	for i := range recs {
		recs[i] = randRecord(rng)
	}
	path := filepath.Join(t.TempDir(), "t.ledger")
	writeTestLedger(t, path, recs)

	log, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if log.Truncated {
		t.Fatal("clean ledger reported truncated")
	}
	got := log.Decisions()
	if len(got) != len(recs) {
		t.Fatalf("replayed %d decisions, want %d", len(got), len(recs))
	}
	items := log.Items()
	if len(items) != len(recs) {
		t.Fatalf("replayed %d line items, want %d", len(items), len(recs))
	}
	for i := range recs {
		if !recordsEqual(recs[i], got[i]) {
			t.Fatalf("decision %d drifted", i)
		}
		if want := LineItemFor(recs[i]); !bytes.Equal(EncodeLineItem(&want), EncodeLineItem(&items[i])) {
			t.Fatalf("line item %d drifted: got %+v want %+v", i, items[i], want)
		}
	}
	if li := log.LastDecisionInterval(); li != recs[len(recs)-1].Interval {
		t.Fatalf("LastDecisionInterval = %d, want %d", li, recs[len(recs)-1].Interval)
	}
}

// TestTornTailRecovery is the crash-durability property: for a ledger
// truncated at *every* byte boundary inside its final record, Replay
// must recover exactly the preceding intact records, and OpenWriter must
// truncate the torn tail and support appending a fresh record afterwards.
func TestTornTailRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	recs := []loop.DecisionRecord{randRecord(rng), randRecord(rng), randRecord(rng)}
	dir := t.TempDir()
	path := filepath.Join(dir, "t.ledger")
	writeTestLedger(t, path, recs)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	log, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Entries) != 6 {
		t.Fatalf("expected 6 entries, got %d", len(log.Entries))
	}
	// frameEnds[i] is the byte offset just past entry i; a cut lands a
	// reader at the largest frame end ≤ the cut.
	frameEnds := []int64{headerLen}
	for _, e := range log.Entries {
		var plen int
		if e.Decision != nil {
			plen = len(EncodeDecision(e.Decision))
		} else {
			plen = len(EncodeLineItem(e.Item))
		}
		frameEnds = append(frameEnds, frameEnds[len(frameEnds)-1]+int64(frameOverhead+plen))
	}
	goodFor := func(cut int64) (good int64, entries int) {
		for i := len(frameEnds) - 1; i >= 0; i-- {
			if frameEnds[i] <= cut {
				return frameEnds[i], i
			}
		}
		t.Fatalf("cut %d before header end", cut)
		return 0, 0
	}

	start4th, _ := goodFor(frameEnds[4]) // start of the 3rd record's decision frame
	for cut := start4th; cut < int64(len(whole)); cut++ {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantGood, wantEntries := goodFor(cut)
		log, err := Replay(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if log.Truncated != (cut > wantGood) {
			t.Fatalf("cut %d: Truncated=%v, want %v", cut, log.Truncated, cut > wantGood)
		}
		if log.GoodBytes != wantGood {
			t.Fatalf("cut %d: recovered to %d, want %d", cut, log.GoodBytes, wantGood)
		}
		if len(log.Entries) != wantEntries {
			t.Fatalf("cut %d: %d entries, want %d", cut, len(log.Entries), wantEntries)
		}
		got := log.Decisions()
		for i := range got {
			if !recordsEqual(got[i], recs[i]) {
				t.Fatalf("cut %d: intact decision %d drifted", cut, i)
			}
		}

		// Reopen for append: the torn tail must be truncated away and a
		// fresh append must land cleanly after the last good record.
		w, err := OpenWriter(path)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if w.RecoveredBytes() != cut-wantGood {
			t.Fatalf("cut %d: recovered %d bytes, want %d", cut, w.RecoveredBytes(), cut-wantGood)
		}
		if err := w.AppendDecision(recs[2]); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		log, err = Replay(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if log.Truncated {
			t.Fatalf("cut %d: ledger still torn after recovery append", cut)
		}
		got = log.Decisions()
		if len(got) == 0 || !recordsEqual(got[len(got)-1], recs[2]) {
			t.Fatalf("cut %d: post-recovery append drifted", cut)
		}
	}
}

// TestCorruptedMidFileRecord: a flipped bit inside an earlier record fails
// its checksum, and everything from that record on is treated as torn —
// checksums bound the blast radius to a suffix, never a silent misparse.
func TestCorruptedMidFileRecord(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	recs := []loop.DecisionRecord{randRecord(rng), randRecord(rng), randRecord(rng)}
	path := filepath.Join(t.TempDir(), "t.ledger")
	writeTestLedger(t, path, recs)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerLen+frameOverhead/2] ^= 0x40 // inside the first frame
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	log, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if !log.Truncated || len(log.Entries) != 0 {
		t.Fatalf("corrupted first record: %d entries, truncated=%v; want 0, true", len(log.Entries), log.Truncated)
	}
}

func TestOpenWriterRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-ledger")
	if err := os.WriteFile(path, []byte("hello, I am your thesis draft"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWriter(path); err == nil {
		t.Fatal("garbage file opened as ledger")
	}
	if _, err := Replay(path); err == nil {
		t.Fatal("garbage file replayed as ledger")
	}
}

func TestWriterGroupCommit(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	path := filepath.Join(t.TempDir(), "t.ledger")
	w, err := OpenWriter(path, WithSyncEvery(64))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.AppendDecision(randRecord(rng)); err != nil {
			t.Fatal(err)
		}
	}
	preSyncs := w.Syncs()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if preSyncs != 0 || w.Syncs() != 1 {
		t.Fatalf("group commit: %d syncs before close, %d after; want 0, 1", preSyncs, w.Syncs())
	}
	log, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Decisions()) != 10 {
		t.Fatalf("replayed %d, want 10", len(log.Decisions()))
	}
}

// simGolden runs one single-tenant simulation with both a live Collector
// and a ledger Recorder attached, then asserts Replay ≡ live — every
// decision record byte-identical and every line item re-deriving the
// snapshot's cost.
func simGolden(t *testing.T, name string, fp faults.Plan, act actuate.Config) {
	t.Helper()
	w, err := workload.ByName("ds2")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ByName("trace3", 5)
	if err != nil {
		t.Fatal(err)
	}
	cat := resource.LockStepCatalog()
	scaler, err := core.New(core.Config{
		Catalog: cat,
		Initial: cat.AtStep(5),
		Goal:    core.LatencyGoal{Kind: core.GoalP95, Ms: 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name+".ledger")
	lw, err := OpenWriter(path, WithSyncEvery(32))
	if err != nil {
		t.Fatal(err)
	}
	rec := &Recorder{W: lw}
	runner := sim.NewRunner(sim.WithSeed(5), sim.WithFaults(fp), sim.WithActuation(act))
	res, err := runner.Run(context.Background(), sim.Spec{
		Workload: w,
		Trace:    tr,
		Policy:   policy.NewAuto(scaler),
		Seed:     5,
		GoalMs:   500,
		Audit:    true,
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}
	live := res.Audit
	if len(live) == 0 {
		t.Fatal("no live audit records")
	}
	log, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if log.Truncated {
		t.Fatal("clean run ledger reported truncated")
	}
	replayed := log.Decisions()
	if len(replayed) != len(live) {
		t.Fatalf("replayed %d decisions, live run has %d", len(replayed), len(live))
	}
	for i := range live {
		if !bytes.Equal(EncodeDecision(&live[i]), EncodeDecision(&replayed[i])) {
			t.Fatalf("%s: decision %d not byte-identical to live record", name, i)
		}
		// The looser structural check too, for fields DeepEqual can see.
		if !reflect.DeepEqual(normalize(live[i]), normalize(replayed[i])) {
			t.Fatalf("%s: decision %d not DeepEqual to live record", name, i)
		}
	}
	items := log.Items()
	if len(items) != len(live) {
		t.Fatalf("%d line items for %d decisions", len(items), len(live))
	}
	var billed float64
	for i, it := range items {
		want := LineItemFor(live[i])
		if it != want && !(it.Cost != it.Cost && want.Cost != want.Cost) {
			t.Fatalf("%s: line item %d: got %+v want %+v", name, i, it, want)
		}
		billed += it.Cost
	}
	if math.Abs(billed-res.TotalCost) > 1e-9*math.Max(1, math.Abs(res.TotalCost)) {
		t.Fatalf("%s: ledger bills %v, live run cost %v", name, billed, res.TotalCost)
	}
}

func TestReplayEqualsLiveClean(t *testing.T) {
	simGolden(t, "clean", faults.Plan{}, actuate.Config{})
}

func TestReplayEqualsLiveFaults(t *testing.T) {
	simGolden(t, "faults", faults.Uniform(0.1), actuate.Config{})
}

func TestReplayEqualsLiveChaos(t *testing.T) {
	simGolden(t, "chaos", faults.Uniform(0.1), actuate.Config{
		Seed:             1,
		LatencyIntervals: 1,
		FailRate:         0.1,
	})
}

// normalize maps empty-but-non-nil explanation slices to nil so DeepEqual
// compares semantics, not allocation history.
func normalize(r loop.DecisionRecord) loop.DecisionRecord {
	if len(r.Explanations) == 0 {
		r.Explanations = nil
	}
	// NaN fields compare unequal under DeepEqual though the bits match;
	// the byte-level check already covers exactness, so zero them here.
	zap := func(v *float64) {
		if *v != *v {
			*v = 0
		}
	}
	zap(&r.Snapshot.Cost)
	zap(&r.Snapshot.AvgLatencyMs)
	zap(&r.Snapshot.P95LatencyMs)
	zap(&r.BalloonTargetMB)
	return r
}
