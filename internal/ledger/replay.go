package ledger

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"daasscale/internal/loop"
)

// Entry is one replayed ledger record in file order. Exactly one of
// Decision/Item is non-nil, per Kind.
type Entry struct {
	// Kind is the frame kind (KindDecision or KindLineItem).
	Kind byte
	// Decision is the decoded decision record (Kind == KindDecision).
	Decision *loop.DecisionRecord
	// Item is the decoded billing line-item (Kind == KindLineItem).
	Item *LineItem
}

// Log is the full replayed contents of one ledger file.
type Log struct {
	// Entries holds every intact record in append order.
	Entries []Entry
	// GoodBytes is the byte offset of the end of the last intact record.
	GoodBytes int64
	// Truncated reports whether bytes past GoodBytes were ignored — the
	// torn tail a crash mid-append leaves. The intact prefix is still
	// fully usable; OpenWriter removes the tail when it next appends.
	Truncated bool
}

// Decisions extracts the decision records in append order.
func (l *Log) Decisions() []loop.DecisionRecord {
	var out []loop.DecisionRecord
	for _, e := range l.Entries {
		if e.Decision != nil {
			out = append(out, *e.Decision)
		}
	}
	return out
}

// Items extracts the billing line-items in append order.
func (l *Log) Items() []LineItem {
	var out []LineItem
	for _, e := range l.Entries {
		if e.Item != nil {
			out = append(out, *e.Item)
		}
	}
	return out
}

// TotalCost sums every line-item charge — the bill the ledger supports.
func (l *Log) TotalCost() float64 {
	var t float64
	for _, e := range l.Entries {
		if e.Item != nil {
			t += e.Item.Cost
		}
	}
	return t
}

// LastDecisionInterval returns the interval of the last decision record,
// or -1 when the log holds none. The serving daemon resumes a tenant's
// ingest watermark from it after a restart.
func (l *Log) LastDecisionInterval() int {
	for i := len(l.Entries) - 1; i >= 0; i-- {
		if l.Entries[i].Decision != nil {
			return l.Entries[i].Decision.Interval
		}
	}
	return -1
}

// scanFrames walks the framed region of a ledger image, calling visit (when
// non-nil) with each intact frame's kind and payload. It returns the byte
// offset just past the last intact frame and the frame count. A bad header
// is an error; a torn or checksum-failing tail simply ends the scan — the
// returned offset is the recovery point.
func scanFrames(data []byte, visit func(kind byte, payload []byte) error) (good int64, frames int64, err error) {
	if len(data) < headerLen {
		return 0, 0, fmt.Errorf("file is shorter than a ledger header")
	}
	if binary.LittleEndian.Uint32(data[0:]) != Magic {
		return 0, 0, fmt.Errorf("not a ledger file (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != Version {
		return 0, 0, fmt.Errorf("ledger format version %d, this build reads %d", v, Version)
	}
	off := int64(headerLen)
	for {
		rest := data[off:]
		if len(rest) < frameOverhead {
			return off, frames, nil // clean end or torn frame head
		}
		kind := rest[0]
		plen := binary.LittleEndian.Uint32(rest[1:])
		if plen > maxPayload || int64(len(rest)) < int64(frameOverhead)+int64(plen) {
			return off, frames, nil // torn payload (or torn length field)
		}
		payload := rest[5 : 5+plen]
		crc := crc32.Update(0, crcTable, rest[:5])
		crc = crc32.Update(crc, crcTable, payload)
		if binary.LittleEndian.Uint32(rest[5+plen:]) != crc {
			return off, frames, nil // checksum mismatch: treat as torn tail
		}
		if visit != nil {
			if err := visit(kind, payload); err != nil {
				return off, frames, err
			}
		}
		off += int64(frameOverhead) + int64(plen)
		frames++
	}
}

// Replay reads a ledger file back into memory: every intact record, in
// append order, byte-faithfully decoded. It is the inverse of the Writer —
// for any recorded run, Replay(path).Decisions() equals the live
// Collector's records and the line-items re-derive the bill exactly. A
// torn tail is reported via Log.Truncated, not an error; an unreadable or
// non-ledger file is an error.
func Replay(path string) (*Log, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	log := &Log{}
	good, _, err := scanFrames(data, func(kind byte, payload []byte) error {
		switch kind {
		case KindDecision:
			r, err := DecodeDecision(payload)
			if err != nil {
				return err
			}
			log.Entries = append(log.Entries, Entry{Kind: kind, Decision: &r})
		case KindLineItem:
			it, err := DecodeLineItem(payload)
			if err != nil {
				return err
			}
			log.Entries = append(log.Entries, Entry{Kind: kind, Item: &it})
		default:
			return fmt.Errorf("ledger: unknown record kind %d (written by a newer version?)", kind)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ledger: %s: %w", path, err)
	}
	log.GoodBytes = good
	log.Truncated = good < int64(len(data))
	return log, nil
}
