package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"daasscale/internal/fsio"
	"daasscale/internal/loop"
)

// Entry is one replayed ledger record in file order. Exactly one of
// Decision/Item is non-nil, per Kind.
type Entry struct {
	// Kind is the frame kind (KindDecision or KindLineItem).
	Kind byte
	// Decision is the decoded decision record (Kind == KindDecision).
	Decision *loop.DecisionRecord
	// Item is the decoded billing line-item (Kind == KindLineItem).
	Item *LineItem
}

// Log is the full replayed contents of one ledger — every segment
// (sealed and active), concatenated in rotation order.
type Log struct {
	// Entries holds every intact record in append order.
	Entries []Entry
	// GoodBytes sums, over all segments, the byte offset of the end of
	// each segment's last intact record. For an unrotated ledger this is
	// the offset of the end of the last intact record in the file.
	GoodBytes int64
	// Truncated reports whether any segment carried bytes past its intact
	// records — the torn tail a crash mid-append leaves. The intact
	// records are still fully usable; OpenWriter removes an active
	// segment's tail when it next appends, and a sealed segment's tail is
	// permanently isolated by the rotation.
	Truncated bool
	// Segments is how many segment files were replayed (1 for an
	// unrotated ledger).
	Segments int
}

// Decisions extracts the decision records in append order.
func (l *Log) Decisions() []loop.DecisionRecord {
	var out []loop.DecisionRecord
	for _, e := range l.Entries {
		if e.Decision != nil {
			out = append(out, *e.Decision)
		}
	}
	return out
}

// Items extracts the billing line-items in append order.
func (l *Log) Items() []LineItem {
	var out []LineItem
	for _, e := range l.Entries {
		if e.Item != nil {
			out = append(out, *e.Item)
		}
	}
	return out
}

// TotalCost sums every line-item charge — the bill the ledger supports.
func (l *Log) TotalCost() float64 {
	var t float64
	for _, e := range l.Entries {
		if e.Item != nil {
			t += e.Item.Cost
		}
	}
	return t
}

// LastDecisionInterval returns the interval of the last decision record,
// or -1 when the log holds none. The serving daemon resumes a tenant's
// ingest watermark from it after a restart.
func (l *Log) LastDecisionInterval() int {
	for i := len(l.Entries) - 1; i >= 0; i-- {
		if l.Entries[i].Decision != nil {
			return l.Entries[i].Decision.Interval
		}
	}
	return -1
}

// scanFrames walks the framed region of a ledger image, calling visit (when
// non-nil) with each intact frame's kind and payload. It returns the byte
// offset just past the last intact frame and the frame count. A bad header
// is an error; a torn or checksum-failing tail simply ends the scan — the
// returned offset is the recovery point.
func scanFrames(data []byte, visit func(kind byte, payload []byte) error) (good int64, frames int64, err error) {
	if len(data) < headerLen {
		return 0, 0, fmt.Errorf("file is shorter than a ledger header")
	}
	if binary.LittleEndian.Uint32(data[0:]) != Magic {
		return 0, 0, fmt.Errorf("not a ledger file (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != Version {
		return 0, 0, fmt.Errorf("ledger format version %d, this build reads %d", v, Version)
	}
	off := int64(headerLen)
	for {
		rest := data[off:]
		if len(rest) < frameOverhead {
			return off, frames, nil // clean end or torn frame head
		}
		kind := rest[0]
		plen := binary.LittleEndian.Uint32(rest[1:])
		if plen > maxPayload || int64(len(rest)) < int64(frameOverhead)+int64(plen) {
			return off, frames, nil // torn payload (or torn length field)
		}
		payload := rest[5 : 5+plen]
		crc := crc32.Update(0, crcTable, rest[:5])
		crc = crc32.Update(crc, crcTable, payload)
		if binary.LittleEndian.Uint32(rest[5+plen:]) != crc {
			return off, frames, nil // checksum mismatch: treat as torn tail
		}
		if visit != nil {
			if err := visit(kind, payload); err != nil {
				return off, frames, err
			}
		}
		off += int64(frameOverhead) + int64(plen)
		frames++
	}
}

// Replay reads a ledger back into memory from the real filesystem. See
// ReplayFS.
func Replay(path string) (*Log, error) {
	return ReplayFS(fsio.OS, path)
}

// ReplayFS reads a ledger back into memory: every intact record of every
// segment — sealed segments in rotation order, then the active file — in
// append order, byte-faithfully decoded. It is the inverse of the Writer:
// for any recorded run, Decisions() equals the live Collector's records
// and the line-items re-derive the bill exactly, across rotations. A torn
// tail is reported via Log.Truncated, not an error; an unreadable or
// non-ledger segment is an error. An absent active file is tolerated when
// sealed segments exist (a crash can land between the rotation's rename
// and the new segment's create); with no segments at all the path's
// os.ErrNotExist surfaces.
func ReplayFS(fsys fsio.FS, path string) (*Log, error) {
	seals, err := sealPaths(fsys, path)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	log := &Log{}
	for _, seg := range seals {
		if err := replaySegment(fsys, seg, log); err != nil {
			return nil, err
		}
	}
	if err := replaySegment(fsys, path, log); err != nil {
		if len(seals) > 0 && errors.Is(err, os.ErrNotExist) {
			return log, nil
		}
		return nil, err
	}
	return log, nil
}

// replaySegment decodes one segment file into log.
func replaySegment(fsys fsio.FS, path string, log *Log) error {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	good, _, err := scanFrames(data, func(kind byte, payload []byte) error {
		switch kind {
		case KindDecision:
			r, err := DecodeDecision(payload)
			if err != nil {
				return err
			}
			log.Entries = append(log.Entries, Entry{Kind: kind, Decision: &r})
		case KindLineItem:
			it, err := DecodeLineItem(payload)
			if err != nil {
				return err
			}
			log.Entries = append(log.Entries, Entry{Kind: kind, Item: &it})
		default:
			return fmt.Errorf("ledger: unknown record kind %d (written by a newer version?)", kind)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("ledger: %s: %w", path, err)
	}
	log.GoodBytes += good
	log.Truncated = log.Truncated || good < int64(len(data))
	log.Segments++
	return nil
}

// StreamBytes re-encodes the log's entries into the byte stream the live
// writer framed, payloads only, in append order. Because the encoding is
// deterministic this reproduces the originally-written payload bytes
// exactly, so "replay is a prefix of the live stream" can be checked as
// plain byte comparison even across segment rotations.
func (l *Log) StreamBytes() []byte {
	var out []byte
	for _, e := range l.Entries {
		switch {
		case e.Decision != nil:
			out = append(out, EncodeDecision(e.Decision)...)
		case e.Item != nil:
			out = append(out, EncodeLineItem(e.Item)...)
		}
	}
	return out
}
