package ledger

import (
	"encoding/binary"
	"fmt"
	"math"

	"daasscale/internal/fabric"
	"daasscale/internal/faults"
	"daasscale/internal/loop"
	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
)

// The record codec. Every field is written in a fixed order with a fixed
// width encoding — integers as little-endian two's-complement u64, floats
// as their exact IEEE-754 bit pattern, strings and slices length-prefixed
// — so encoding is a pure function of the record's value: the same
// DecisionRecord always produces the same bytes, which is what makes
// "replay the ledger ≡ re-run the month" a byte-level property rather
// than an approximate one. Fixed-size arrays (resource kinds, wait
// classes, fault kinds) are still length-prefixed and the length is
// validated on decode, so a ledger written before a constant grew fails
// loudly instead of mis-framing.

// encBuf accumulates one record payload.
type encBuf struct{ b []byte }

func (e *encBuf) i64(v int)     { e.b = binary.LittleEndian.AppendUint64(e.b, uint64(int64(v))) }
func (e *encBuf) f64(v float64) { e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v)) }
func (e *encBuf) boolean(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}
func (e *encBuf) str(s string) {
	e.b = binary.LittleEndian.AppendUint32(e.b, uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *encBuf) strs(ss []string) {
	e.b = binary.LittleEndian.AppendUint32(e.b, uint32(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}

// decBuf consumes one record payload.
type decBuf struct {
	b   []byte
	off int
	err error
}

func (d *decBuf) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("ledger: truncated record payload at offset %d", d.off)
	}
}

func (d *decBuf) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decBuf) i64() int {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return int(v)
}

func (d *decBuf) f64() float64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *decBuf) boolean() bool {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return false
	}
	v := d.b[d.off] != 0
	d.off++
	return v
}

func (d *decBuf) str() string {
	n := int(d.u32())
	if d.err != nil || d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decBuf) strs() []string {
	n := int(d.u32())
	if d.err != nil {
		return nil
	}
	if n == 0 {
		// Zero-length decodes to nil, matching what policies emit for a
		// silent decision — DeepEqual against live records holds.
		return nil
	}
	if n > len(d.b)-d.off { // each string needs ≥4 bytes of length prefix
		d.fail()
		return nil
	}
	ss := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ss = append(ss, d.str())
	}
	return ss
}

// fixedLen writes/validates the length prefix of a fixed-size array.
func (d *decBuf) fixedLen(want int, what string) bool {
	n := int(d.u32())
	if d.err != nil {
		return false
	}
	if n != want {
		d.err = fmt.Errorf("ledger: %s has %d entries, this build expects %d (ledger written by an incompatible version)", what, n, want)
		return false
	}
	return true
}

func encodeSnapshot(e *encBuf, s *telemetry.Snapshot) {
	e.i64(s.Interval)
	e.str(s.Container)
	e.i64(s.Step)
	e.f64(s.Cost)
	e.b = binary.LittleEndian.AppendUint32(e.b, uint32(resource.NumKinds))
	for _, k := range resource.Kinds {
		e.f64(s.Utilization[k])
	}
	for _, k := range resource.Kinds {
		e.f64(s.UtilizationPeak[k])
	}
	e.b = binary.LittleEndian.AppendUint32(e.b, uint32(telemetry.NumWaitClasses))
	for c := range s.WaitMs {
		e.f64(s.WaitMs[c])
	}
	e.f64(s.AvgLatencyMs)
	e.f64(s.P95LatencyMs)
	e.f64(s.Transactions)
	e.f64(s.OfferedRPS)
	e.f64(s.MemoryUsedMB)
	e.f64(s.PhysicalReads)
	e.f64(s.PhysicalWrites)
}

func decodeSnapshot(d *decBuf, s *telemetry.Snapshot) {
	s.Interval = d.i64()
	s.Container = d.str()
	s.Step = d.i64()
	s.Cost = d.f64()
	if !d.fixedLen(resource.NumKinds, "resource vector") {
		return
	}
	for _, k := range resource.Kinds {
		s.Utilization[k] = d.f64()
	}
	for _, k := range resource.Kinds {
		s.UtilizationPeak[k] = d.f64()
	}
	if !d.fixedLen(telemetry.NumWaitClasses, "wait-class array") {
		return
	}
	for c := range s.WaitMs {
		s.WaitMs[c] = d.f64()
	}
	s.AvgLatencyMs = d.f64()
	s.P95LatencyMs = d.f64()
	s.Transactions = d.f64()
	s.OfferedRPS = d.f64()
	s.MemoryUsedMB = d.f64()
	s.PhysicalReads = d.f64()
	s.PhysicalWrites = d.f64()
}

// EncodeDecision renders one DecisionRecord as its canonical payload bytes
// (no frame header or checksum — the Writer adds those).
func EncodeDecision(r *loop.DecisionRecord) []byte {
	e := &encBuf{b: make([]byte, 0, 256+len(r.Tenant)+len(r.Actual)+len(r.Target))}
	e.str(r.Tenant)
	e.i64(r.Interval)
	encodeSnapshot(e, &r.Snapshot)
	e.str(r.Actual)
	e.str(r.Target)
	e.boolean(r.Changed)
	e.boolean(r.Observed)
	e.boolean(r.Submitted)
	e.f64(r.BalloonTargetMB)
	e.strs(r.Explanations)
	e.i64(r.Delivered)
	e.i64(r.Faults.Intervals)
	e.i64(r.Faults.Delivered)
	e.b = binary.LittleEndian.AppendUint32(e.b, uint32(faults.NumKinds))
	for _, n := range r.Faults.Injected {
		e.i64(n)
	}
	e.i64(r.Actuation.Submitted)
	e.i64(r.Actuation.Ops)
	e.i64(r.Actuation.Attempts)
	e.i64(r.Actuation.Retries)
	e.i64(r.Actuation.Applied)
	e.i64(r.Actuation.Throttled)
	e.i64(r.Actuation.TransientFailures)
	e.i64(r.Actuation.Refused)
	e.i64(r.Actuation.Superseded)
	e.i64(r.Actuation.Expired)
	e.i64(r.Actuation.SumEffectIntervals)
	e.i64(r.Actuation.MaxEffectIntervals)
	// Contention stamp (format version 2): the hosting node and its
	// interference state, appended after every v1 field.
	e.i64(r.Node)
	e.b = binary.LittleEndian.AppendUint32(e.b, uint32(fabric.NumPressureChannels))
	for _, ch := range fabric.PressureChannels {
		e.f64(r.NodePressure[ch])
	}
	for _, ch := range fabric.PressureChannels {
		e.f64(r.WaitInflation[ch])
	}
	return e.b
}

// DecodeDecision parses a payload produced by EncodeDecision. Trailing
// bytes are an error: a frame carries exactly one record.
func DecodeDecision(payload []byte) (loop.DecisionRecord, error) {
	d := &decBuf{b: payload}
	var r loop.DecisionRecord
	r.Tenant = d.str()
	r.Interval = d.i64()
	decodeSnapshot(d, &r.Snapshot)
	r.Actual = d.str()
	r.Target = d.str()
	r.Changed = d.boolean()
	r.Observed = d.boolean()
	r.Submitted = d.boolean()
	r.BalloonTargetMB = d.f64()
	r.Explanations = d.strs()
	r.Delivered = d.i64()
	r.Faults.Intervals = d.i64()
	r.Faults.Delivered = d.i64()
	if d.fixedLen(faults.NumKinds, "fault-kind array") {
		for i := range r.Faults.Injected {
			r.Faults.Injected[i] = d.i64()
		}
	}
	r.Actuation.Submitted = d.i64()
	r.Actuation.Ops = d.i64()
	r.Actuation.Attempts = d.i64()
	r.Actuation.Retries = d.i64()
	r.Actuation.Applied = d.i64()
	r.Actuation.Throttled = d.i64()
	r.Actuation.TransientFailures = d.i64()
	r.Actuation.Refused = d.i64()
	r.Actuation.Superseded = d.i64()
	r.Actuation.Expired = d.i64()
	r.Actuation.SumEffectIntervals = d.i64()
	r.Actuation.MaxEffectIntervals = d.i64()
	r.Node = d.i64()
	if d.fixedLen(fabric.NumPressureChannels, "pressure-channel array") {
		for _, ch := range fabric.PressureChannels {
			r.NodePressure[ch] = d.f64()
		}
		for _, ch := range fabric.PressureChannels {
			r.WaitInflation[ch] = d.f64()
		}
	}
	if d.err != nil {
		return loop.DecisionRecord{}, d.err
	}
	if d.off != len(payload) {
		return loop.DecisionRecord{}, fmt.Errorf("ledger: decision record has %d trailing bytes", len(payload)-d.off)
	}
	return r, nil
}

// EncodeLineItem renders one billing line-item as its canonical payload.
func EncodeLineItem(it *LineItem) []byte {
	e := &encBuf{b: make([]byte, 0, 64+len(it.Tenant)+len(it.Container))}
	e.str(it.Tenant)
	e.i64(it.Interval)
	e.str(it.Container)
	e.f64(it.Cost)
	return e.b
}

// DecodeLineItem parses a payload produced by EncodeLineItem.
func DecodeLineItem(payload []byte) (LineItem, error) {
	d := &decBuf{b: payload}
	var it LineItem
	it.Tenant = d.str()
	it.Interval = d.i64()
	it.Container = d.str()
	it.Cost = d.f64()
	if d.err != nil {
		return LineItem{}, d.err
	}
	if d.off != len(payload) {
		return LineItem{}, fmt.Errorf("ledger: line item has %d trailing bytes", len(payload)-d.off)
	}
	return it, nil
}
