// Package ledger is the billing-grade decision log behind the serving
// daemon: an append-only, fsync'd, checksummed file of every
// loop.DecisionRecord and billing line-item a tenant's control loop emits.
// The design goal is the metering discipline of a production DBaaS —
// "make billing boring, deterministic, and explainable" — which reduces
// to three properties:
//
//   - Append-only with per-record checksums: a record, once synced, is
//     immutable, and any torn or bit-rotted tail is detected rather than
//     parsed.
//   - Deterministic encoding: the same record always produces the same
//     bytes (integers little-endian, floats as exact IEEE bits), so a
//     month of decisions and charges is byte-reproducibly re-derivable
//     from the log alone — Replay over a recorded run equals the live
//     Collector's records exactly.
//   - Crash recovery to the last good record: OpenWriter scans an
//     existing file, truncates an incomplete or checksum-failing tail
//     (the bytes a crash mid-append could leave), and resumes appending
//     after the last intact record.
//
// Storage faults are first-class: the Writer is sticky-failed (poisoned)
// after any write or sync error — once a frame may be torn mid-file,
// further appends would bury it where recovery cannot truncate, so they
// are refused until Rotate seals the damaged segment away and starts a
// fresh one. A rotated ledger is a sequence of segments
// ("<path>.seal-000001", ... plus the active "<path>"), and Replay
// concatenates their intact records in order.
//
// File layout (every segment):
//
//	header : magic "DLG1" (u32 LE) | version (u32 LE)
//	frame  : kind (u8) | payloadLen (u32 LE) | payload | crc32c (u32 LE)
//
// The CRC is Castagnoli over kind|payloadLen|payload, so a frame whose
// length field itself was torn fails the checksum instead of mis-framing
// the rest of the file.
package ledger

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"daasscale/internal/fsio"
	"daasscale/internal/loop"
)

const (
	// Magic identifies a ledger file ("DLG1" little-endian).
	Magic = uint32(0x31474C44)
	// Version is the current format version. Version 2 appended the
	// contention stamp (node index, channel pressures, wait inflation) to
	// every decision record; version-1 ledgers fail loudly on open rather
	// than mis-framing.
	Version = uint32(2)
	// headerLen is the byte length of the file header.
	headerLen = 8
	// frameOverhead is the per-record framing cost: kind, length, CRC.
	frameOverhead = 1 + 4 + 4
	// maxPayload bounds a single record payload; a length field beyond it
	// is treated as corruption rather than an allocation request.
	maxPayload = 1 << 24
	// sealSuffix separates a sealed segment's sequence number from the
	// active ledger path it was rotated out of.
	sealSuffix = ".seal-"
)

// Record kinds.
const (
	// KindDecision frames an encoded loop.DecisionRecord.
	KindDecision = byte(1)
	// KindLineItem frames an encoded billing LineItem.
	KindLineItem = byte(2)
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrWriterFailed marks a poisoned Writer: a previous append or sync
// failed, the tail of the active segment may be torn, and further appends
// are refused until Rotate starts a fresh segment. errors.Is(err,
// ErrWriterFailed) distinguishes "refusing because already broken" from a
// fresh storage error; errors.As/Is on the same error still reach the
// root cause (EIO, ENOSPC, ...).
var ErrWriterFailed = errors.New("ledger: writer failed; segment must be rotated")

// LineItem is one interval's charge on a tenant's bill: which container
// the tenant ran in and what it cost. Line items are derived from
// decision records at append time, so the bill and the decision trail can
// never disagree about an interval.
type LineItem struct {
	// Tenant is the billed tenant.
	Tenant string `json:"tenant"`
	// Interval is the billing interval charged.
	Interval int `json:"interval"`
	// Container is the SKU the tenant ran in during the interval.
	Container string `json:"container"`
	// Cost is the charge, in the catalog's abstract cost units.
	Cost float64 `json:"cost"`
}

// LineItemFor derives the billing line-item of one decision record: the
// interval is billed at the snapshot's container and cost (for withheld
// serving intervals the server synthesizes a snapshot carrying the
// running container's list price, so gaps still bill).
func LineItemFor(r loop.DecisionRecord) LineItem {
	return LineItem{
		Tenant:    r.Tenant,
		Interval:  r.Interval,
		Container: r.Snapshot.Container,
		Cost:      r.Snapshot.Cost,
	}
}

// WriterOption configures OpenWriter.
type WriterOption func(*Writer)

// WithSyncEvery sets the group-commit stride: the writer fsyncs after
// every n appended records. 1 (the default) syncs every record — strict
// durability; larger strides amortize the fsync over a batch at the cost
// of the unsynced tail on power loss (the tail is detected and truncated
// on reopen, never misread). n ≤ 0 disables count-driven syncs entirely:
// the caller owns Sync, typically once per ingest request.
func WithSyncEvery(n int) WriterOption {
	return func(w *Writer) { w.syncEvery = n }
}

// Writer appends checksummed records to the active segment of a ledger.
// It is not goroutine-safe; the serving daemon gives each tenant its own
// ledger and serializes appends under the tenant's lock.
//
// Failure is sticky: after any append or sync error the Writer is
// poisoned — every further Append/Sync returns an error wrapping both
// ErrWriterFailed and the original cause, and nothing more is written to
// the possibly-torn segment. Rotate seals the damaged segment and opens a
// fresh one, clearing the poison; Failed reports the latched cause.
type Writer struct {
	fsys      fsio.FS
	f         fsio.File
	bw        *bufio.Writer
	path      string
	syncEvery int
	pending   int
	failed    error

	records   int64
	bytes     int64
	recovered int64
	syncs     int64
	seals     int64
}

// OpenWriter opens (or creates) the ledger at path on the real
// filesystem. See OpenWriterFS.
func OpenWriter(path string, opts ...WriterOption) (*Writer, error) {
	return OpenWriterFS(fsio.OS, path, opts...)
}

// OpenWriterFS opens (or creates) the active segment of the ledger at
// path for appending, on the given filesystem. An existing file is
// scanned first: a torn tail — an incomplete frame or a checksum
// mismatch, as left by a crash mid-append — is truncated away so
// appending resumes after the last intact record. A file holding a torn
// prefix of the header itself (a power cut during creation) is rewritten
// from scratch. A file that is not a ledger (bad magic or version) is an
// error, never overwritten. Sealed sibling segments are left untouched;
// Replay reads them, OpenWriterFS only appends to the active segment.
func OpenWriterFS(fsys fsio.FS, path string, opts ...WriterOption) (*Writer, error) {
	w := &Writer{fsys: fsys, path: path, syncEvery: 1}
	for _, o := range opts {
		o(w)
	}
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ledger: %w", err)
	}
	size := st.Size()
	if size > 0 && size < headerLen {
		// A crash during segment creation can leave a prefix of the header.
		// Only a byte-prefix of the canonical header is recovered this way —
		// anything else is a foreign file we refuse to clobber.
		data, err := io.ReadAll(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("ledger: %w", err)
		}
		if !bytes.HasPrefix(headerBytes(), data) {
			f.Close()
			return nil, fmt.Errorf("ledger: %s: not a ledger file (torn non-ledger prefix)", path)
		}
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("ledger: %w", err)
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("ledger: %w", err)
		}
		w.recovered = size
		size = 0
	}
	if size == 0 {
		if err := writeHeader(fsys, f, path); err != nil {
			f.Close()
			return nil, err
		}
		w.bytes = headerLen
	} else {
		data, err := io.ReadAll(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("ledger: %w", err)
		}
		good, records, err := scanFrames(data, nil)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("ledger: %s: %w", path, err)
		}
		if good < int64(len(data)) {
			// Crash recovery: drop the torn tail and persist the cut so a
			// second crash cannot resurrect it.
			w.recovered = int64(len(data)) - good
			if err := f.Truncate(good); err != nil {
				f.Close()
				return nil, fmt.Errorf("ledger: truncating torn tail of %s: %w", path, err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, fmt.Errorf("ledger: %w", err)
			}
		}
		if _, err := f.Seek(good, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("ledger: %w", err)
		}
		w.records = records
		w.bytes = good
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	return w, nil
}

// headerBytes returns the canonical segment header.
func headerBytes() []byte {
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], Magic)
	binary.LittleEndian.PutUint32(hdr[4:], Version)
	return hdr[:]
}

// writeHeader writes and persists a fresh segment header: data fsync plus
// directory fsync, so the segment exists durably before any record lands
// in it. This is also the recovery probe — a disk that completes it can
// take appends again.
func writeHeader(fsys fsio.FS, f fsio.File, path string) error {
	if _, err := f.Write(headerBytes()); err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	return nil
}

// poisonErr wraps the latched failure for a refused operation.
func (w *Writer) poisonErr() error {
	return fmt.Errorf("%w: %w", ErrWriterFailed, w.failed)
}

// fail latches the first storage error, poisoning the writer.
func (w *Writer) fail(err error) error {
	if w.failed == nil {
		w.failed = err
	}
	return err
}

// Failed returns the latched storage error that poisoned the writer, or
// nil while it is healthy.
func (w *Writer) Failed() error { return w.failed }

// appendFrame writes one framed record and applies the sync policy.
// Failure is sticky: after the first error the segment tail may be torn,
// so every further append is refused until Rotate — appending past a torn
// frame would bury it mid-file where recovery cannot truncate it.
func (w *Writer) appendFrame(kind byte, payload []byte) error {
	if w.failed != nil {
		return w.poisonErr()
	}
	if len(payload) > maxPayload {
		// An oversized record is a caller bug, not a storage fault: nothing
		// was written, so the writer stays healthy.
		return fmt.Errorf("ledger: record payload of %d bytes exceeds the %d-byte frame limit", len(payload), maxPayload)
	}
	var head [5]byte
	head[0] = kind
	binary.LittleEndian.PutUint32(head[1:], uint32(len(payload)))
	crc := crc32.Update(0, crcTable, head[:])
	crc = crc32.Update(crc, crcTable, payload)
	if _, err := w.bw.Write(head[:]); err != nil {
		return w.fail(fmt.Errorf("ledger: %w", err))
	}
	if _, err := w.bw.Write(payload); err != nil {
		return w.fail(fmt.Errorf("ledger: %w", err))
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	if _, err := w.bw.Write(tail[:]); err != nil {
		return w.fail(fmt.Errorf("ledger: %w", err))
	}
	w.records++
	w.bytes += int64(frameOverhead + len(payload))
	w.pending++
	if w.syncEvery > 0 && w.pending >= w.syncEvery {
		return w.Sync()
	}
	return nil
}

// AppendDecision appends one decision record.
func (w *Writer) AppendDecision(r loop.DecisionRecord) error {
	return w.appendFrame(KindDecision, EncodeDecision(&r))
}

// AppendLineItem appends one billing line-item.
func (w *Writer) AppendLineItem(it LineItem) error {
	return w.appendFrame(KindLineItem, EncodeLineItem(&it))
}

// Sync flushes buffered frames and fsyncs the file: every record appended
// so far is durable when Sync returns. A flush or fsync error poisons the
// writer (the segment tail state is unknown after a failed fsync).
func (w *Writer) Sync() error {
	if w.failed != nil {
		return w.poisonErr()
	}
	if err := w.bw.Flush(); err != nil {
		return w.fail(fmt.Errorf("ledger: %w", err))
	}
	if err := w.f.Sync(); err != nil {
		return w.fail(fmt.Errorf("ledger: %w", err))
	}
	w.pending = 0
	w.syncs++
	return nil
}

// Rotate seals the active segment and starts a fresh one, clearing any
// poison. The active file is renamed to "<path>.seal-NNNNNN" (its intact
// prefix stays replayable; its possibly-torn tail is isolated where no
// append can ever bury it) and a new active segment is created with a
// fully fsync'd header — which doubles as the recovery probe write: if
// Rotate returns nil, the disk demonstrably completed a create, a write,
// an fsync, a rename, and a directory sync.
//
// On failure the writer stays (or becomes) poisoned and Rotate can be
// retried; a half-completed previous rotation (segment already renamed)
// is detected and resumed rather than treated as an error.
func (w *Writer) Rotate() error {
	// The old handle and any bytes buffered past the failure point are
	// abandoned deliberately — they are exactly what must not reach disk.
	if w.f != nil {
		w.f.Close()
		w.f = nil
		w.bw = nil
	}
	dir := filepath.Dir(w.path)
	seq, err := nextSealSeq(w.fsys, w.path)
	if err != nil {
		return w.fail(fmt.Errorf("ledger: rotate: %w", err))
	}
	sealPath := w.path + sealSuffix + fmt.Sprintf("%06d", seq)
	if err := w.fsys.Rename(w.path, sealPath); err != nil {
		// A missing active segment means a previous Rotate attempt already
		// renamed it (and failed later) — resume from there.
		if !errors.Is(err, os.ErrNotExist) {
			return w.fail(fmt.Errorf("ledger: rotate: %w", err))
		}
	}
	if err := w.fsys.SyncDir(dir); err != nil {
		return w.fail(fmt.Errorf("ledger: rotate: %w", err))
	}
	f, err := w.fsys.OpenFile(w.path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return w.fail(fmt.Errorf("ledger: rotate: %w", err))
	}
	if err := writeHeader(w.fsys, f, w.path); err != nil {
		f.Close()
		return w.fail(err)
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	w.records = 0
	w.bytes = headerLen
	w.pending = 0
	w.failed = nil
	w.seals++
	return nil
}

// nextSealSeq returns one past the highest existing seal sequence number
// for path's segments.
func nextSealSeq(fsys fsio.FS, path string) (int, error) {
	seals, err := sealPaths(fsys, path)
	if err != nil {
		return 0, err
	}
	max := 0
	for _, s := range seals {
		if n, ok := sealSeq(filepath.Base(path), filepath.Base(s)); ok && n > max {
			max = n
		}
	}
	return max + 1, nil
}

// sealSeq extracts the sequence number from a sealed segment's base name.
func sealSeq(activeBase, base string) (int, bool) {
	rest, ok := strings.CutPrefix(base, activeBase+sealSuffix)
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// sealPaths lists path's sealed segments in rotation order.
func sealPaths(fsys fsio.FS, path string) ([]string, error) {
	dir := filepath.Dir(path)
	base := filepath.Base(path)
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type seal struct {
		path string
		seq  int
	}
	var seals []seal
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if n, ok := sealSeq(base, e.Name()); ok {
			seals = append(seals, seal{path: filepath.Join(dir, e.Name()), seq: n})
		}
	}
	sort.Slice(seals, func(i, j int) bool { return seals[i].seq < seals[j].seq })
	out := make([]string, len(seals))
	for i, s := range seals {
		out[i] = s.path
	}
	return out, nil
}

// Close syncs and closes the file. A poisoned writer skips the sync —
// flushing buffered bytes after a failure could bury a torn frame — and
// returns the poison error after releasing the handle.
func (w *Writer) Close() error {
	if w.f == nil {
		if w.failed != nil {
			return w.poisonErr()
		}
		return nil
	}
	var syncErr error
	if w.failed != nil {
		syncErr = w.poisonErr()
	} else {
		syncErr = w.Sync()
	}
	closeErr := w.f.Close()
	w.f = nil
	if syncErr != nil {
		return syncErr
	}
	if closeErr != nil {
		return fmt.Errorf("ledger: %w", closeErr)
	}
	return nil
}

// Path returns the active segment's file path.
func (w *Writer) Path() string { return w.path }

// Records returns the number of records in the active segment, including
// those recovered from a previous writer's file. Sealed segments' records
// are visible through Replay, not here.
func (w *Writer) Records() int64 { return w.records }

// Bytes returns the active segment's current byte length (buffered
// appends included).
func (w *Writer) Bytes() int64 { return w.bytes }

// RecoveredBytes reports how many torn-tail bytes OpenWriter truncated
// away (0 for a clean open).
func (w *Writer) RecoveredBytes() int64 { return w.recovered }

// Syncs returns the number of fsync batches issued.
func (w *Writer) Syncs() int64 { return w.syncs }

// Seals returns how many segments this writer has sealed via Rotate.
func (w *Writer) Seals() int64 { return w.seals }

// Recorder adapts a Writer to the loop.Recorder interface: every
// DecisionRecord is appended together with its derived billing line-item,
// so the decision trail and the bill advance in lockstep. loop.Recorder
// cannot return errors; the first append failure is latched and must be
// checked via Err after the run (the serving daemon checks it after every
// ingest batch). The Writer itself is also poisoned by the failed append,
// so even a caller that ignores Err cannot keep writing past the damage.
type Recorder struct {
	// W is the destination ledger.
	W *Writer

	err error
}

// Record implements loop.Recorder.
func (r *Recorder) Record(d loop.DecisionRecord) {
	if r.err != nil {
		return
	}
	if err := r.W.AppendDecision(d); err != nil {
		r.err = err
		return
	}
	r.err = r.W.AppendLineItem(LineItemFor(d))
}

// Err returns the first append error, if any.
func (r *Recorder) Err() error { return r.err }
