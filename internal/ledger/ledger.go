// Package ledger is the billing-grade decision log behind the serving
// daemon: an append-only, fsync'd, checksummed file of every
// loop.DecisionRecord and billing line-item a tenant's control loop emits.
// The design goal is the metering discipline of a production DBaaS —
// "make billing boring, deterministic, and explainable" — which reduces
// to three properties:
//
//   - Append-only with per-record checksums: a record, once synced, is
//     immutable, and any torn or bit-rotted tail is detected rather than
//     parsed.
//   - Deterministic encoding: the same record always produces the same
//     bytes (integers little-endian, floats as exact IEEE bits), so a
//     month of decisions and charges is byte-reproducibly re-derivable
//     from the log alone — Replay over a recorded run equals the live
//     Collector's records exactly.
//   - Crash recovery to the last good record: OpenWriter scans an
//     existing file, truncates an incomplete or checksum-failing tail
//     (the bytes a crash mid-append could leave), and resumes appending
//     after the last intact record.
//
// File layout:
//
//	header : magic "DLG1" (u32 LE) | version (u32 LE)
//	frame  : kind (u8) | payloadLen (u32 LE) | payload | crc32c (u32 LE)
//
// The CRC is Castagnoli over kind|payloadLen|payload, so a frame whose
// length field itself was torn fails the checksum instead of mis-framing
// the rest of the file.
package ledger

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"daasscale/internal/fsio"
	"daasscale/internal/loop"
)

const (
	// Magic identifies a ledger file ("DLG1" little-endian).
	Magic = uint32(0x31474C44)
	// Version is the current format version.
	Version = uint32(1)
	// headerLen is the byte length of the file header.
	headerLen = 8
	// frameOverhead is the per-record framing cost: kind, length, CRC.
	frameOverhead = 1 + 4 + 4
	// maxPayload bounds a single record payload; a length field beyond it
	// is treated as corruption rather than an allocation request.
	maxPayload = 1 << 24
)

// Record kinds.
const (
	// KindDecision frames an encoded loop.DecisionRecord.
	KindDecision = byte(1)
	// KindLineItem frames an encoded billing LineItem.
	KindLineItem = byte(2)
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// LineItem is one interval's charge on a tenant's bill: which container
// the tenant ran in and what it cost. Line items are derived from
// decision records at append time, so the bill and the decision trail can
// never disagree about an interval.
type LineItem struct {
	// Tenant is the billed tenant.
	Tenant string `json:"tenant"`
	// Interval is the billing interval charged.
	Interval int `json:"interval"`
	// Container is the SKU the tenant ran in during the interval.
	Container string `json:"container"`
	// Cost is the charge, in the catalog's abstract cost units.
	Cost float64 `json:"cost"`
}

// LineItemFor derives the billing line-item of one decision record: the
// interval is billed at the snapshot's container and cost (for withheld
// serving intervals the server synthesizes a snapshot carrying the
// running container's list price, so gaps still bill).
func LineItemFor(r loop.DecisionRecord) LineItem {
	return LineItem{
		Tenant:    r.Tenant,
		Interval:  r.Interval,
		Container: r.Snapshot.Container,
		Cost:      r.Snapshot.Cost,
	}
}

// WriterOption configures OpenWriter.
type WriterOption func(*Writer)

// WithSyncEvery sets the group-commit stride: the writer fsyncs after
// every n appended records. 1 (the default) syncs every record — strict
// durability; larger strides amortize the fsync over a batch at the cost
// of the unsynced tail on power loss (the tail is detected and truncated
// on reopen, never misread). n ≤ 0 disables count-driven syncs entirely:
// the caller owns Sync, typically once per ingest request.
func WithSyncEvery(n int) WriterOption {
	return func(w *Writer) { w.syncEvery = n }
}

// Writer appends checksummed records to a ledger file. It is not
// goroutine-safe; the serving daemon gives each tenant its own ledger and
// serializes appends under the tenant's lock.
type Writer struct {
	f         *os.File
	bw        *bufio.Writer
	path      string
	syncEvery int
	pending   int

	records   int64
	bytes     int64
	recovered int64
	syncs     int64
}

// OpenWriter opens (or creates) the ledger at path for appending. An
// existing file is scanned first: a torn tail — an incomplete frame or a
// checksum mismatch, as left by a crash mid-append — is truncated away so
// appending resumes after the last intact record. A file that is not a
// ledger (bad magic or version) is an error, never overwritten.
func OpenWriter(path string, opts ...WriterOption) (*Writer, error) {
	w := &Writer{path: path, syncEvery: 1}
	for _, o := range opts {
		o(w)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ledger: %w", err)
	}
	if st.Size() == 0 {
		var hdr [headerLen]byte
		binary.LittleEndian.PutUint32(hdr[0:], Magic)
		binary.LittleEndian.PutUint32(hdr[4:], Version)
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("ledger: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("ledger: %w", err)
		}
		if err := fsio.SyncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, err
		}
		w.bytes = headerLen
	} else {
		data, err := io.ReadAll(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("ledger: %w", err)
		}
		good, records, err := scanFrames(data, nil)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("ledger: %s: %w", path, err)
		}
		if good < int64(len(data)) {
			// Crash recovery: drop the torn tail and persist the cut so a
			// second crash cannot resurrect it.
			w.recovered = int64(len(data)) - good
			if err := f.Truncate(good); err != nil {
				f.Close()
				return nil, fmt.Errorf("ledger: truncating torn tail of %s: %w", path, err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, fmt.Errorf("ledger: %w", err)
			}
		}
		if _, err := f.Seek(good, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("ledger: %w", err)
		}
		w.records = records
		w.bytes = good
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	return w, nil
}

// appendFrame writes one framed record and applies the sync policy.
func (w *Writer) appendFrame(kind byte, payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("ledger: record payload of %d bytes exceeds the %d-byte frame limit", len(payload), maxPayload)
	}
	var head [5]byte
	head[0] = kind
	binary.LittleEndian.PutUint32(head[1:], uint32(len(payload)))
	crc := crc32.Update(0, crcTable, head[:])
	crc = crc32.Update(crc, crcTable, payload)
	if _, err := w.bw.Write(head[:]); err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	if _, err := w.bw.Write(payload); err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	if _, err := w.bw.Write(tail[:]); err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	w.records++
	w.bytes += int64(frameOverhead + len(payload))
	w.pending++
	if w.syncEvery > 0 && w.pending >= w.syncEvery {
		return w.Sync()
	}
	return nil
}

// AppendDecision appends one decision record.
func (w *Writer) AppendDecision(r loop.DecisionRecord) error {
	return w.appendFrame(KindDecision, EncodeDecision(&r))
}

// AppendLineItem appends one billing line-item.
func (w *Writer) AppendLineItem(it LineItem) error {
	return w.appendFrame(KindLineItem, EncodeLineItem(&it))
}

// Sync flushes buffered frames and fsyncs the file: every record appended
// so far is durable when Sync returns.
func (w *Writer) Sync() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	w.pending = 0
	w.syncs++
	return nil
}

// Close syncs and closes the file.
func (w *Writer) Close() error {
	if w.f == nil {
		return nil
	}
	syncErr := w.Sync()
	closeErr := w.f.Close()
	w.f = nil
	if syncErr != nil {
		return syncErr
	}
	if closeErr != nil {
		return fmt.Errorf("ledger: %w", closeErr)
	}
	return nil
}

// Path returns the ledger file path.
func (w *Writer) Path() string { return w.path }

// Records returns the number of records in the ledger, including those
// recovered from a previous writer's file.
func (w *Writer) Records() int64 { return w.records }

// Bytes returns the ledger's current byte length (buffered appends
// included).
func (w *Writer) Bytes() int64 { return w.bytes }

// RecoveredBytes reports how many torn-tail bytes OpenWriter truncated
// away (0 for a clean open).
func (w *Writer) RecoveredBytes() int64 { return w.recovered }

// Syncs returns the number of fsync batches issued.
func (w *Writer) Syncs() int64 { return w.syncs }

// Recorder adapts a Writer to the loop.Recorder interface: every
// DecisionRecord is appended together with its derived billing line-item,
// so the decision trail and the bill advance in lockstep. loop.Recorder
// cannot return errors; the first append failure is latched and must be
// checked via Err after the run (the serving daemon checks it after every
// ingest batch).
type Recorder struct {
	// W is the destination ledger.
	W *Writer

	err error
}

// Record implements loop.Recorder.
func (r *Recorder) Record(d loop.DecisionRecord) {
	if r.err != nil {
		return
	}
	if err := r.W.AppendDecision(d); err != nil {
		r.err = err
		return
	}
	r.err = r.W.AppendLineItem(LineItemFor(d))
}

// Err returns the first append error, if any.
func (r *Recorder) Err() error { return r.err }
