package ledger

import (
	"bytes"
	"errors"
	"math/rand"
	"syscall"
	"testing"

	"daasscale/internal/diskfaults"
	"daasscale/internal/loop"
)

func memLedger(t *testing.T) (*diskfaults.MemFS, string) {
	t.Helper()
	m := diskfaults.NewMemFS()
	if err := m.MkdirAll("/led", 0o755); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	return m, "/led/t.ledger"
}

// TestWriterPoisonedAfterFailedSync is the regression test for the sticky
// failure: before it, a caller that ignored a Sync error could keep
// appending after a partial write, burying a torn frame mid-file where
// recovery cannot truncate it.
func TestWriterPoisonedAfterFailedSync(t *testing.T) {
	m, path := memLedger(t)
	ffs := diskfaults.Wrap(m, Plan0())
	w, err := OpenWriterFS(ffs, path)
	if err != nil {
		t.Fatalf("OpenWriterFS: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	rec := randRecord(rng)
	if err := w.AppendDecision(rec); err != nil {
		t.Fatalf("clean append: %v", err)
	}
	// Fail the next sync (the append's own group commit). The window spans
	// the flush's write op too; the mask makes only the fsync fault.
	ffs.SetPlan(diskfaults.Plan{Kind: diskfaults.KindEIO, Start: ffs.Ops(), Count: 2, Mask: diskfaults.MaskOf(diskfaults.OpSync)})
	err = w.AppendDecision(rec)
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("faulted append error = %v, want EIO", err)
	}
	if w.Failed() == nil {
		t.Fatal("writer not poisoned after failed sync")
	}
	// Disk is healthy again, but the writer must still refuse: the segment
	// tail state is unknown.
	for i := 0; i < 3; i++ {
		err := w.AppendDecision(rec)
		if !errors.Is(err, ErrWriterFailed) {
			t.Fatalf("append %d after poison: err = %v, want ErrWriterFailed", i, err)
		}
		if !errors.Is(err, syscall.EIO) {
			t.Fatalf("append %d after poison lost the root cause: %v", i, err)
		}
	}
	if err := w.Sync(); !errors.Is(err, ErrWriterFailed) {
		t.Fatalf("sync after poison: err = %v, want ErrWriterFailed", err)
	}
	if err := w.Close(); !errors.Is(err, ErrWriterFailed) {
		t.Fatalf("close of poisoned writer: err = %v, want ErrWriterFailed", err)
	}
}

// Plan0 returns an empty plan (no faults); named so tests read clearly.
func Plan0() diskfaults.Plan { return diskfaults.Plan{} }

// TestWriterPoisonedAfterFailedAppend fails the write path itself (via a
// short write at flush time) and checks the same stickiness.
func TestWriterPoisonedAfterFailedAppend(t *testing.T) {
	m, path := memLedger(t)
	ffs := diskfaults.Wrap(m, Plan0())
	w, err := OpenWriterFS(ffs, path)
	if err != nil {
		t.Fatalf("OpenWriterFS: %v", err)
	}
	rng := rand.New(rand.NewSource(2))
	rec := randRecord(rng)
	ffs.SetPlan(diskfaults.Plan{Kind: diskfaults.KindShortWrite, Start: ffs.Ops(), Count: 1, Mask: diskfaults.MaskOf(diskfaults.OpWrite)})
	if err := w.AppendDecision(rec); err == nil {
		t.Fatal("faulted append returned nil")
	}
	if w.Failed() == nil {
		t.Fatal("writer not poisoned after failed append")
	}
	ffs.SetPlan(Plan0())
	if err := w.AppendDecision(rec); !errors.Is(err, ErrWriterFailed) {
		t.Fatalf("append after poison: err = %v, want ErrWriterFailed", err)
	}
	// The torn half-frame the short write left must be recoverable: reopen
	// truncates it, and replay sees only the intact prefix (here: nothing).
	w.Close()
	w2, err := OpenWriterFS(ffs, path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if w2.Records() != 0 {
		t.Fatalf("reopen found %d records in a torn segment, want 0", w2.Records())
	}
	if w2.RecoveredBytes() == 0 {
		t.Fatal("reopen did not truncate the torn tail")
	}
	w2.Close()
}

// TestRotateSealsAndRecovers drives the full degraded-mode cycle: append,
// poison, rotate, append again, and replay across the seal boundary.
func TestRotateSealsAndRecovers(t *testing.T) {
	m, path := memLedger(t)
	ffs := diskfaults.Wrap(m, Plan0())
	w, err := OpenWriterFS(ffs, path)
	if err != nil {
		t.Fatalf("OpenWriterFS: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	var want []loop.DecisionRecord
	appendOne := func() {
		t.Helper()
		rec := randRecord(rng)
		if err := w.AppendDecision(rec); err != nil {
			t.Fatalf("append: %v", err)
		}
		if err := w.AppendLineItem(LineItemFor(rec)); err != nil {
			t.Fatalf("append item: %v", err)
		}
		want = append(want, rec)
	}
	appendOne()
	appendOne()

	// Poison, then heal the disk and rotate.
	ffs.SetPlan(diskfaults.Plan{Kind: diskfaults.KindEIO, Start: ffs.Ops(), Count: 1})
	rec := randRecord(rng)
	if err := w.AppendDecision(rec); err == nil {
		t.Fatal("faulted append returned nil")
	}
	ffs.SetPlan(Plan0())
	if err := w.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if w.Failed() != nil {
		t.Fatalf("poison survived rotation: %v", w.Failed())
	}
	if w.Seals() != 1 {
		t.Fatalf("Seals = %d, want 1", w.Seals())
	}
	appendOne()

	log, err := ReplayFS(ffs, path)
	if err != nil {
		t.Fatalf("ReplayFS: %v", err)
	}
	if log.Segments != 2 {
		t.Fatalf("Segments = %d, want 2", log.Segments)
	}
	decs := log.Decisions()
	if len(decs) != len(want) {
		t.Fatalf("replayed %d decisions, want %d", len(decs), len(want))
	}
	for i := range want {
		if !recordsEqual(decs[i], want[i]) {
			t.Fatalf("decision %d differs after rotation", i)
		}
	}
	if items := log.Items(); len(items) != len(want) {
		t.Fatalf("replayed %d line items, want %d", len(items), len(want))
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestRotateRetryAfterPartialRotation fails the rotation midway (after the
// rename) and checks a retry resumes instead of erroring or double-sealing.
func TestRotateRetryAfterPartialRotation(t *testing.T) {
	m, path := memLedger(t)
	ffs := diskfaults.Wrap(m, Plan0())
	w, err := OpenWriterFS(ffs, path)
	if err != nil {
		t.Fatalf("OpenWriterFS: %v", err)
	}
	rng := rand.New(rand.NewSource(4))
	if err := w.AppendDecision(randRecord(rng)); err != nil {
		t.Fatalf("append: %v", err)
	}
	// Fail the create of the fresh segment: the rename has happened.
	ffs.SetPlan(diskfaults.Plan{Kind: diskfaults.KindEIO, Start: 0, Count: -1, Mask: diskfaults.MaskOf(diskfaults.OpCreate)})
	if err := w.Rotate(); err == nil {
		t.Fatal("rotate with faulted create returned nil")
	}
	if w.Failed() == nil {
		t.Fatal("failed rotation left writer unpoisoned")
	}
	ffs.SetPlan(Plan0())
	if err := w.Rotate(); err != nil {
		t.Fatalf("rotate retry: %v", err)
	}
	log, err := ReplayFS(ffs, path)
	if err != nil {
		t.Fatalf("ReplayFS: %v", err)
	}
	if log.Segments != 2 || len(log.Decisions()) != 1 {
		t.Fatalf("after retried rotation: %d segments, %d decisions; want 2, 1", log.Segments, len(log.Decisions()))
	}
	w.Close()
}

// TestOpenWriterRecoversTornHeader covers a power cut during segment
// creation: a file holding only a prefix of the header is rewritten, while
// a same-length foreign file is refused.
func TestOpenWriterRecoversTornHeader(t *testing.T) {
	m, path := memLedger(t)
	hdr := []byte{0x44, 0x4C, 0x47, 0x31, byte(Version), 0} // "DLG1" + torn version
	writeRaw(t, m, path, hdr)
	w, err := OpenWriterFS(m, path)
	if err != nil {
		t.Fatalf("open over torn header: %v", err)
	}
	if w.RecoveredBytes() != int64(len(hdr)) {
		t.Fatalf("RecoveredBytes = %d, want %d", w.RecoveredBytes(), len(hdr))
	}
	rng := rand.New(rand.NewSource(5))
	if err := w.AppendDecision(randRecord(rng)); err != nil {
		t.Fatalf("append after header recovery: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := ReplayFS(m, path); err != nil {
		t.Fatalf("replay after header recovery: %v", err)
	}

	writeRaw(t, m, "/led/foreign", []byte("JUNK!"))
	if _, err := OpenWriterFS(m, "/led/foreign"); err == nil {
		t.Fatal("short foreign file was clobbered")
	}
}

func writeRaw(t *testing.T, m *diskfaults.MemFS, path string, data []byte) {
	t.Helper()
	f, err := m.OpenFile(path, 0x40|0x2, 0o644) // O_CREATE|O_RDWR
	if err != nil {
		t.Fatalf("OpenFile(%s): %v", path, err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	f.Close()
}

// TestStreamBytesPrefixAcrossRotation pins the checker's core invariant:
// the replayed stream is byte-identical to the concatenation of what the
// live writer encoded, across a rotation.
func TestStreamBytesPrefixAcrossRotation(t *testing.T) {
	m, path := memLedger(t)
	w, err := OpenWriterFS(m, path)
	if err != nil {
		t.Fatalf("OpenWriterFS: %v", err)
	}
	rng := rand.New(rand.NewSource(6))
	var live []byte
	for i := 0; i < 10; i++ {
		rec := randRecord(rng)
		it := LineItemFor(rec)
		if err := w.AppendDecision(rec); err != nil {
			t.Fatalf("append: %v", err)
		}
		if err := w.AppendLineItem(it); err != nil {
			t.Fatalf("append item: %v", err)
		}
		live = append(live, EncodeDecision(&rec)...)
		live = append(live, EncodeLineItem(&it)...)
		if i == 4 {
			if err := w.Rotate(); err != nil {
				t.Fatalf("Rotate: %v", err)
			}
		}
	}
	w.Close()
	log, err := ReplayFS(m, path)
	if err != nil {
		t.Fatalf("ReplayFS: %v", err)
	}
	if !bytes.Equal(log.StreamBytes(), live) {
		t.Fatal("replayed stream differs from live stream across rotation")
	}
}
