// Package fleet models the service-wide view a DaaS provider has: telemetry
// from thousands of tenant databases with very different workloads. The
// paper uses this fleet-wide telemetry twice — first to motivate
// auto-scaling (Section 2.2: how often do resource demands cross container
// boundaries?), and then to calibrate the demand estimator's wait
// thresholds (Section 4.1: the separation between wait distributions at low
// and high utilization).
//
// Production traces are proprietary, so the fleet here is synthetic: each
// tenant draws a weekly resource-demand series from an archetype (steady,
// diurnal, bursty, spiky, growing) with tenant-specific scale and resource
// mix. The analyses reproduce the distributional shapes the paper reports
// (Figures 2, 4 and 6), and — critically — the calibration path is the same:
// thresholds are derived from percentiles of the fleet's wait distributions.
package fleet

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"daasscale/internal/exec"
	"daasscale/internal/resource"
	"daasscale/internal/stats"
)

// Archetype is a tenant demand pattern family.
type Archetype int

// The demand archetypes observed across a fleet.
const (
	// Steady tenants hold a roughly constant demand.
	Steady Archetype = iota
	// Diurnal tenants follow a day/night cycle.
	Diurnal
	// Bursty tenants are mostly quiet with multi-hour bursts.
	Bursty
	// Spiky tenants see frequent short spikes.
	Spiky
	// Growing tenants ramp up over the week.
	Growing
	numArchetypes
)

// String names the archetype.
func (a Archetype) String() string {
	switch a {
	case Steady:
		return "steady"
	case Diurnal:
		return "diurnal"
	case Bursty:
		return "bursty"
	case Spiky:
		return "spiky"
	case Growing:
		return "growing"
	default:
		return fmt.Sprintf("archetype(%d)", int(a))
	}
}

// IntervalsPerDay is the number of 5-minute aggregation intervals per day
// (the granularity of the paper's production analysis, Section 2.2).
const IntervalsPerDay = 24 * 12

// Tenant is one synthetic tenant: a weekly demand series at 5-minute
// granularity, in absolute resource units (the same units as container
// allocations).
type Tenant struct {
	// ID identifies the tenant within the fleet.
	ID int
	// Archetype is the tenant's demand pattern family.
	Archetype Archetype
	// Demand holds one resource-demand vector per 5-minute interval.
	Demand []resource.Vector
}

// Days returns the length of the series in days, rounding a trailing
// partial day up: a checkpoint-resumed or otherwise truncated series that
// covers 1.5 days spans 2 calendar days, and the old truncating division
// both undercounted it and reported 0 days (division by which the
// changes-per-day statistics then skipped the tenant entirely) for any
// series shorter than a full day.
func (t *Tenant) Days() int {
	if len(t.Demand) == 0 {
		return 0
	}
	return (len(t.Demand) + IntervalsPerDay - 1) / IntervalsPerDay
}

// GenerateFleet synthesizes n tenants with days of 5-minute demand history.
// Archetypes, scales and resource mixes vary per tenant; everything is
// deterministic in the seed. Equivalent to GenerateFleetContext with a
// background context and default pool options.
//
// Deprecated: this materializes the whole fleet in one slice and cannot
// scale past ~10k tenants. Use Stream, which generates, analyzes and
// discards tenants shard by shard; GenerateFleet remains as the exact
// in-memory oracle for tests and small interactive runs.
func GenerateFleet(n, days int, seed int64) []Tenant {
	f, _ := GenerateFleetContext(context.Background(), n, days, seed, exec.Options{})
	return f
}

// GenerateFleetContext synthesizes the fleet across a worker pool. Each
// tenant's RNG is derived from the fleet seed and the tenant index via
// exec.SplitSeed, so the fleet is deterministic in the seed and
// bit-identical at any worker count. The error is non-nil only when ctx is
// canceled before generation finishes.
//
// Deprecated: like GenerateFleet this holds every tenant in memory at
// once. Use Stream for fleet-scale runs; the per-tenant series it feeds to
// its aggregator are bit-identical to the tenants this returns.
func GenerateFleetContext(ctx context.Context, n, days int, seed int64, opts exec.Options) ([]Tenant, error) {
	return exec.Map(ctx, n, opts, func(_ context.Context, i int) (Tenant, error) {
		rng := rand.New(rand.NewSource(exec.SplitSeed(seed, int64(i))))
		return generateTenant(i, days, rng), nil
	})
}

// generateTenant builds one tenant's weekly demand in a fresh allocation.
func generateTenant(id, days int, rng *rand.Rand) Tenant {
	return generateTenantInto(id, days, rng, nil)
}

// generateTenantInto builds one tenant's demand into buf when it has the
// capacity — the streaming pipeline's warm path reuses one demand buffer
// for every tenant of a shard, which is what keeps the per-tenant
// allocation count flat. The produced series is bit-identical to
// generateTenant's for the same RNG stream.
func generateTenantInto(id, days int, rng *rand.Rand, buf []resource.Vector) Tenant {
	arch := Archetype(rng.Intn(int(numArchetypes)))
	intervals := days * IntervalsPerDay

	// Base scale: log-uniform across the catalog's range. The mix skews
	// the tenant toward one dominant resource.
	scale := math.Exp(rng.Float64() * math.Log(40)) // 1x .. 40x of the smallest container
	cpuMix := 0.4 + rng.Float64()*1.2
	ioMix := 0.4 + rng.Float64()*1.2
	logMix := 0.3 + rng.Float64()*1.0
	memMB := 512 + rng.Float64()*12000
	phase := rng.Float64() * float64(IntervalsPerDay)
	growth := 0.5 + rng.Float64() // Growing: end-of-week multiple

	// Burst state for the bursty/spiky archetypes.
	burstLeft := 0
	burstAmp := 1.0

	if cap(buf) < intervals {
		buf = make([]resource.Vector, intervals)
	}
	t := Tenant{ID: id, Archetype: arch, Demand: buf[:intervals]}
	for i := 0; i < intervals; i++ {
		level := 1.0
		switch arch {
		case Steady:
			level = 1
		case Diurnal:
			day := 2 * math.Pi * (float64(i) + phase) / float64(IntervalsPerDay)
			level = 0.35 + 0.65*math.Max(0, math.Sin(day))
		case Bursty:
			if burstLeft == 0 && rng.Float64() < 0.004 { // ~1 burst/day
				burstLeft = 12 + rng.Intn(60) // 1–6 hours
				burstAmp = 3 + rng.Float64()*7
			}
			level = 0.25
			if burstLeft > 0 {
				level = 0.25 * burstAmp
				burstLeft--
			}
		case Spiky:
			if burstLeft == 0 && rng.Float64() < 0.03 {
				burstLeft = 3 + rng.Intn(9) // 15–60 minutes
				burstAmp = 2 + rng.Float64()*6
			}
			level = 0.3
			if burstLeft > 0 {
				level = 0.3 * burstAmp
				burstLeft--
			}
		case Growing:
			level = 0.4 + growth*float64(i)/float64(intervals)
		}
		amp := 0.12
		if arch == Steady {
			amp = 0.04 // steady tenants are steady; others carry real variance
		}
		noise := 1 + amp*(2*rng.Float64()-1)
		l := level * noise * scale
		t.Demand[i] = resource.Vector{
			resource.CPU:    l * cpuMix * 300, // core-ms/s
			resource.Memory: math.Min(memMB, memMB*(0.5+l/scale*0.5)),
			resource.DiskIO: l * ioMix * 60, // IOPS
			resource.LogIO:  l * logMix * 150,
		}
	}
	return t
}

// AssignContainers maps each interval's demand to the smallest fitting
// container (the paper's logical assignment, Section 2.2: "we logically
// assigned the smallest container supported by the service that can meet
// the resource requirements for that interval").
func AssignContainers(t *Tenant, cat *resource.Catalog) []resource.Container {
	return assignContainersInto(t, cat, nil)
}

// assignContainersInto is AssignContainers into a reusable buffer.
func assignContainersInto(t *Tenant, cat *resource.Catalog, buf []resource.Container) []resource.Container {
	if cap(buf) < len(t.Demand) {
		buf = make([]resource.Container, len(t.Demand))
	}
	buf = buf[:len(t.Demand)]
	for i, d := range t.Demand {
		buf[i], _ = cat.SmallestFitting(d)
	}
	return buf
}

// ChangeEvent records a container-size change between successive intervals.
type ChangeEvent struct {
	// Interval is the 5-minute interval index at which the change occurred.
	Interval int
	// FromStep and ToStep are the ladder steps before and after.
	FromStep, ToStep int
}

// StepDelta returns the absolute step distance of the change.
func (c ChangeEvent) StepDelta() int {
	d := c.ToStep - c.FromStep
	if d < 0 {
		d = -d
	}
	return d
}

// ChangeEvents extracts the change events from a container assignment.
func ChangeEvents(assignment []resource.Container) []ChangeEvent {
	return changeEventsInto(assignment, nil)
}

// changeEventsInto appends the change events into out[:0].
func changeEventsInto(assignment []resource.Container, out []ChangeEvent) []ChangeEvent {
	out = out[:0]
	for i := 1; i < len(assignment); i++ {
		if assignment[i].Name != assignment[i-1].Name {
			out = append(out, ChangeEvent{
				Interval: i,
				FromStep: assignment[i-1].Step,
				ToStep:   assignment[i].Step,
			})
		}
	}
	return out
}

// Analysis is the fleet-wide change-event study behind Figure 2 and the
// step-size statistics of Section 4.
type Analysis struct {
	// Tenants is the number of tenants analyzed.
	Tenants int
	// TotalChanges is the number of change events across the fleet.
	TotalChanges int
	// IEICDF is the cumulative distribution of the inter-event interval in
	// minutes (Figure 2(a)).
	IEICDF []stats.CDFPoint
	// IEIWithin60Min is the fraction of changes within 60 minutes of the
	// previous one (the paper reports ≈86%).
	IEIWithin60Min float64
	// ChangesPerDayHist buckets tenants by average changes/day with the
	// paper's edges 0,1,2,3,6,12,24 (Figure 2(b)).
	ChangesPerDayHist []stats.Bucket
	// FracAtLeastOnePerDay, FracAtLeastSixPerDay and FracMoreThan24PerDay
	// are the cumulative fractions the paper quotes (>78%, >52%, ≈28%).
	FracAtLeastOnePerDay float64
	FracAtLeastSixPerDay float64
	FracMoreThan24PerDay float64
	// OneStepShare and AtMostTwoStepsShare are the step-size statistics
	// behind the estimator's 0/1/2-step constraint (≈90% and ≈98%).
	OneStepShare        float64
	AtMostTwoStepsShare float64
}

// ArchetypeBreakdown reports the average container changes per day for each
// demand archetype — the fleet-operator view of *which* tenants drive the
// resize volume.
//
// Deprecated: takes the whole fleet as a slice. The streaming pipeline's
// Aggregate tracks the same breakdown incrementally; query it with
// Aggregate.ArchetypeChangesPerDay (fleet-level rate rather than
// mean-of-tenant-rates, see the method's comment).
func ArchetypeBreakdown(fleet []Tenant, cat *resource.Catalog) map[Archetype]float64 {
	sums := map[Archetype]float64{}
	counts := map[Archetype]int{}
	for i := range fleet {
		t := &fleet[i]
		days := t.Days()
		if days == 0 {
			continue
		}
		events := ChangeEvents(AssignContainers(t, cat))
		sums[t.Archetype] += float64(len(events)) / float64(days)
		counts[t.Archetype]++
	}
	out := map[Archetype]float64{}
	for a, s := range sums {
		out[a] = s / float64(counts[a])
	}
	return out
}

// Analyze runs the Section 2.2 study over the fleet. Equivalent to
// AnalyzeContext with a background context and default pool options.
//
// Deprecated: requires the materialized fleet and buffers every
// inter-event interval for the exact CDF. Use Stream, whose incremental
// Aggregate reproduces every Analysis field bit-identically except IEICDF
// (sketch resolution instead of sample resolution). Analyze remains as the
// exact oracle the streaming equivalence tests compare against.
func Analyze(fleet []Tenant, cat *resource.Catalog) Analysis {
	a, _ := AnalyzeContext(context.Background(), fleet, cat, exec.Options{})
	return a
}

// AnalyzeContext runs the study with the per-tenant work — container
// assignment and change-event extraction, the expensive part — fanned
// across a worker pool. Aggregation happens serially in tenant index order
// afterwards, so the Analysis is bit-identical to a serial pass at any
// worker count. The error is non-nil only when ctx is canceled.
//
// Deprecated: see Analyze; use Stream for fleet-scale runs.
func AnalyzeContext(ctx context.Context, fleet []Tenant, cat *resource.Catalog, opts exec.Options) (Analysis, error) {
	perTenant, err := exec.Map(ctx, len(fleet), opts, func(_ context.Context, i int) ([]ChangeEvent, error) {
		return ChangeEvents(AssignContainers(&fleet[i], cat)), nil
	})
	if err != nil {
		return Analysis{}, err
	}
	var a Analysis
	a.Tenants = len(fleet)
	var ieiMinutes []float64
	var perTenantChangesPerDay []float64
	var oneStep, atMostTwo int
	for i := range fleet {
		t := &fleet[i]
		events := perTenant[i]
		a.TotalChanges += len(events)
		for j := range events {
			if j > 0 {
				ieiMinutes = append(ieiMinutes, float64(events[j].Interval-events[j-1].Interval)*5)
			}
			if events[j].StepDelta() == 1 {
				oneStep++
			}
			if events[j].StepDelta() <= 2 {
				atMostTwo++
			}
		}
		days := t.Days()
		if days > 0 {
			perTenantChangesPerDay = append(perTenantChangesPerDay, float64(len(events))/float64(days))
		}
	}
	a.IEICDF = stats.CDF(ieiMinutes)
	a.IEIWithin60Min = stats.CDFAt(a.IEICDF, 60)
	a.ChangesPerDayHist = stats.Histogram(perTenantChangesPerDay, []float64{1, 2, 3, 6, 12, 24})
	var ge1, ge6, gt24 int
	for _, c := range perTenantChangesPerDay {
		if c >= 1 {
			ge1++
		}
		if c >= 6 {
			ge6++
		}
		if c > 24 {
			gt24++
		}
	}
	if n := len(perTenantChangesPerDay); n > 0 {
		a.FracAtLeastOnePerDay = float64(ge1) / float64(n)
		a.FracAtLeastSixPerDay = float64(ge6) / float64(n)
		a.FracMoreThan24PerDay = float64(gt24) / float64(n)
	}
	if a.TotalChanges > 0 {
		a.OneStepShare = float64(oneStep) / float64(a.TotalChanges)
		a.AtMostTwoStepsShare = float64(atMostTwo) / float64(a.TotalChanges)
	}
	return a, nil
}
