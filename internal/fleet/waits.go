package fleet

import (
	"math/rand"

	"daasscale/internal/engine"
	"daasscale/internal/estimator"
	"daasscale/internal/resource"
	"daasscale/internal/stats"
	"daasscale/internal/telemetry"
	"daasscale/internal/workload"
)

// WaitSample is one (utilization, wait) observation for one resource over
// one billing interval — the raw material of Figures 4 and 6 and of the
// threshold calibration (Section 4.1).
type WaitSample struct {
	Kind        resource.Kind
	Utilization float64 // fraction of the allocation (0..1)
	WaitMs      float64 // per-interval wait magnitude
	WaitPct     float64 // share of total waits
}

// CollectWaitSamples runs many short engine stints across randomized
// (workload, container, load) configurations — a stand-in for observing
// thousands of production tenants — and returns per-interval wait samples
// for CPU and disk I/O. Deterministic in the seed.
//
// Deprecated: one sequential RNG threads through every configuration, so
// the collection cannot shard, and the returned slice grows with
// configs × intervals. Use StreamCalibration, which splits per-config
// randomness with exec.SplitSeed and folds observations into bounded
// WaitDigests. The two sample streams differ for the same seed;
// CollectWaitSamples remains exact for compatibility tests.
func CollectWaitSamples(configs, intervalsPer int, seed int64) ([]WaitSample, error) {
	rng := rand.New(rand.NewSource(seed))
	cat := resource.LockStepCatalog()
	var out []WaitSample
	for c := 0; c < configs; c++ {
		var w *workload.Workload
		switch rng.Intn(3) {
		case 0:
			w = workload.TPCC()
		case 1:
			w = workload.DS2()
		default:
			w = workload.CPUIO(workload.CPUIOConfig{
				CPUWeight:       0.2 + rng.Float64()*2,
				IOWeight:        0.2 + rng.Float64()*2,
				LogWeight:       rng.Float64(),
				WorkingSetMB:    512 + rng.Float64()*3000,
				HotspotFraction: 0.9 + rng.Float64()*0.1,
			})
		}
		cont := cat.AtStep(rng.Intn(cat.LadderLen()))
		eng, err := engine.New(w, cont, seed+int64(c)*13, engine.Options{WarmStart: rng.Float64() < 0.7})
		if err != nil {
			return nil, err
		}
		// Load spans idle to past saturation of the chosen container.
		rps := rng.Float64() * 700
		for i := 0; i < intervalsPer; i++ {
			for t := 0; t < eng.TicksPerInterval(); t++ {
				jitter := 1 + 0.1*(2*rng.Float64()-1)
				eng.Tick(rps * jitter)
			}
			snap := eng.EndInterval()
			for _, k := range []resource.Kind{resource.CPU, resource.DiskIO} {
				wc := telemetry.WaitClassFor(k)
				out = append(out, WaitSample{
					Kind:        k,
					Utilization: snap.Utilization[k],
					WaitMs:      snap.WaitMs[wc],
					WaitPct:     snap.WaitPct(wc),
				})
			}
		}
	}
	return out, nil
}

// WaitDistributions splits the wait samples of one resource by utilization
// level, reproducing Figure 6: the separation between the wait
// distributions at low (<30%) and high (>70%) utilization is what makes
// percentile-derived thresholds meaningful.
type WaitDistributions struct {
	Kind resource.Kind
	// LowUtilWaitMs / HighUtilWaitMs are the per-interval wait magnitudes
	// observed at low / high utilization.
	LowUtilWaitMs  []float64
	HighUtilWaitMs []float64
	// LowUtilWaitPct / HighUtilWaitPct are the percentage-wait samples.
	LowUtilWaitPct  []float64
	HighUtilWaitPct []float64
}

// SplitByUtilization builds the Figure 6 distributions for a resource,
// using the paper's 30%/70% utilization split.
//
// Deprecated: materializes every sample per band. Use WaitDigest, whose
// Observe applies the same 30%/70% split into mergeable sketches; this
// stays as the exact oracle for the digest error-bound tests.
func SplitByUtilization(samples []WaitSample, k resource.Kind) WaitDistributions {
	d := WaitDistributions{Kind: k}
	for _, s := range samples {
		if s.Kind != k {
			continue
		}
		switch {
		case s.Utilization < 0.30:
			d.LowUtilWaitMs = append(d.LowUtilWaitMs, s.WaitMs)
			d.LowUtilWaitPct = append(d.LowUtilWaitPct, s.WaitPct)
		case s.Utilization > 0.70:
			d.HighUtilWaitMs = append(d.HighUtilWaitMs, s.WaitMs)
			d.HighUtilWaitPct = append(d.HighUtilWaitPct, s.WaitPct)
		}
	}
	return d
}

// Separation quantifies how far apart the low- and high-utilization wait
// distributions are: the ratio of the high distribution's 75th percentile
// to the low distribution's 90th percentile (>1 means separated; the
// paper's Figure 6 shows orders of magnitude).
func (d WaitDistributions) Separation() float64 {
	lo := stats.Quantile(d.LowUtilWaitMs, 0.90)
	hi := stats.Quantile(d.HighUtilWaitMs, 0.75)
	// Idle tenants often have exactly zero waits; floor the denominator at
	// one second per interval so the ratio stays meaningful.
	if lo < 1000 {
		lo = 1000
	}
	return hi / lo
}

// Correlation computes Spearman's ρ between utilization and wait magnitude
// for one resource across all samples — Figure 4's "increasing trend with a
// wide band": positive but far from 1.
//
// Deprecated: needs the full sample slice. Use WaitDigest.Correlation,
// which computes the same statistic over a bounded deterministic prefix of
// the stream.
func Correlation(samples []WaitSample, k resource.Kind) (float64, error) {
	n := 0
	for _, s := range samples {
		if s.Kind == k {
			n++
		}
	}
	// One backing array for both columns plus the rank scratch, sized once.
	cols := make([]float64, 0, 2*n)
	util, wait := cols[0:0:n], cols[n:n:2*n]
	for _, s := range samples {
		if s.Kind == k {
			util = append(util, s.Utilization)
			wait = append(wait, s.WaitMs)
		}
	}
	var sc stats.SpearmanScratch
	return stats.SpearmanBuf(util, wait, &sc)
}

// Calibrate derives estimator thresholds from fleet wait samples, following
// Section 4.1: the LOW wait threshold comes from the low-utilization
// distribution (its 90th percentile — waits below this are unremarkable
// even for idle tenants), and the HIGH threshold from the lower edge (10th
// percentile) of the high-utilization distribution. The high-utilization
// population is bimodal: stable high-utilization stints with modest waits,
// and saturated stints whose wait totals grow without bound — a threshold
// must sit at the boundary between the modes, i.e. at the distribution's
// lower edge, not at its (saturation-dominated) upper percentiles. Both
// values are clamped to a sane operating range. Resources without enough
// samples keep the default thresholds.
//
// Deprecated: sorts every sample to take two percentiles. Use
// StreamCalibration (or CalibrateDigests over WaitDigests); the
// sketch-derived thresholds agree with this function's within the sketch
// accuracy. Calibrate remains as the exact oracle those tests compare
// against.
func Calibrate(samples []WaitSample) estimator.Thresholds {
	th := estimator.DefaultThresholds()
	for _, k := range []resource.Kind{resource.CPU, resource.DiskIO} {
		d := SplitByUtilization(samples, k)
		if len(d.LowUtilWaitMs) < 30 || len(d.HighUtilWaitMs) < 30 {
			continue
		}
		// d is private to this loop iteration, so the per-threshold
		// percentiles select in place instead of copying and sorting.
		low := stats.Clamp(stats.QuantileSelect(d.LowUtilWaitMs, 0.90), 2_000, 50_000)
		high := stats.Clamp(stats.QuantileSelect(d.HighUtilWaitMs, 0.10), 2*low, 200_000)
		th.WaitLowMs[k] = low
		th.WaitHighMs[k] = high
	}
	return th
}
