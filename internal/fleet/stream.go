package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"daasscale/internal/exec"
	"daasscale/internal/fsio"
	"daasscale/internal/resource"
)

// This file is the streaming fleet API — the replacement for the
// slice-materializing GenerateFleet/Analyze pipeline. A run is described by
// a FleetSpec (functional options, mirroring sim.Runner), executed by
// Stream, and observed through a visitor: tenants are generated, assigned
// containers, reduced to change events and folded into per-shard Aggregates
// shard by shard, so peak memory is bounded by the shard size regardless of
// fleet size. Shard aggregates merge in shard-index order via
// exec.StreamOrdered, which together with integer-counter aggregate state
// makes the final Analysis bit-identical at any worker count and any
// checkpoint/resume split.

// DefaultShardSize is the number of tenants generated, analyzed and
// discarded per shard when WithShardSize is not given. At the default, a
// million-tenant run holds ~1k demand series at a time per in-flight shard.
const DefaultShardSize = 1024

// ErrInvalidSpec reports a FleetSpec or CalibrationSpec that cannot be run.
var ErrInvalidSpec = errors.New("fleet: invalid spec")

// streamOpts is the shared option bag for Stream and StreamCalibration.
type streamOpts struct {
	shardSize       int
	workers         int
	alpha           float64
	progress        func(exec.Progress)
	catalog         *resource.Catalog
	checkpoint      string
	checkpointEvery int
	fs              fsio.FS
}

// FleetOption configures a FleetSpec or CalibrationSpec.
type FleetOption func(*streamOpts)

// WithShardSize sets how many tenants (or wait-calibration configs) each
// shard processes before its buffers are recycled; values ≤ 0 keep
// DefaultShardSize. Peak memory scales with shardSize × in-flight shards,
// never with the fleet size.
func WithShardSize(n int) FleetOption {
	return func(o *streamOpts) {
		if n > 0 {
			o.shardSize = n
		}
	}
}

// WithParallelism sets the worker pool size; values ≤ 0 select
// runtime.GOMAXPROCS(0). The result is bit-identical at any setting.
func WithParallelism(workers int) FleetOption {
	return func(o *streamOpts) { o.workers = workers }
}

// WithAccuracy sets the relative accuracy of the quantile sketches
// (non-positive selects stats.DefaultSketchAccuracy). Checkpoints embed the
// accuracy, so a resumed run must use the same value.
func WithAccuracy(alpha float64) FleetOption {
	return func(o *streamOpts) { o.alpha = alpha }
}

// WithProgress installs a throughput-metrics hook, forwarded to the
// underlying exec pool (tasks are shards, not tenants).
func WithProgress(fn func(exec.Progress)) FleetOption {
	return func(o *streamOpts) { o.progress = fn }
}

// WithCatalog overrides the container catalog used for assignment
// (nil keeps resource.DefaultCatalog).
func WithCatalog(cat *resource.Catalog) FleetOption {
	return func(o *streamOpts) { o.catalog = cat }
}

// WithCheckpoint enables checkpoint/resume: completed-shard state is
// periodically serialized to path (atomic replace), and a run finding a
// matching checkpoint there skips the finished shards. Resumed runs are
// bit-identical to uninterrupted ones.
func WithCheckpoint(path string) FleetOption {
	return func(o *streamOpts) { o.checkpoint = path }
}

// WithCheckpointEvery sets the number of shards between checkpoint writes
// (≤ 0 → every 8 shards). The final state is always written.
func WithCheckpointEvery(shards int) FleetOption {
	return func(o *streamOpts) { o.checkpointEvery = shards }
}

// WithCheckpointFS routes checkpoint reads and writes through fsys (nil
// keeps fsio.OS, the real disk). The crash-consistency harness substitutes
// a fault-injecting filesystem here; production never needs this.
func WithCheckpointFS(fsys fsio.FS) FleetOption {
	return func(o *streamOpts) {
		if fsys != nil {
			o.fs = fsys
		}
	}
}

func buildOpts(options []FleetOption) streamOpts {
	o := streamOpts{shardSize: DefaultShardSize}
	for _, opt := range options {
		opt(&o)
	}
	if o.checkpointEvery <= 0 {
		o.checkpointEvery = 8
	}
	if o.fs == nil {
		o.fs = fsio.OS
	}
	return o
}

// FleetSpec describes one streaming fleet study: how many tenants over how
// many days, generated from which seed. Build it with NewFleetSpec.
type FleetSpec struct {
	Tenants int
	Days    int
	Seed    int64
	opts    streamOpts
}

// NewFleetSpec validates and builds a streaming run description.
func NewFleetSpec(tenants, days int, seed int64, options ...FleetOption) (FleetSpec, error) {
	if tenants < 0 {
		return FleetSpec{}, fmt.Errorf("%w: tenants = %d", ErrInvalidSpec, tenants)
	}
	if days <= 0 {
		return FleetSpec{}, fmt.Errorf("%w: days = %d", ErrInvalidSpec, days)
	}
	return FleetSpec{Tenants: tenants, Days: days, Seed: seed, opts: buildOpts(options)}, nil
}

// Shards returns the number of shards the spec splits into.
func (s FleetSpec) Shards() int {
	if s.Tenants == 0 {
		return 0
	}
	return (s.Tenants + s.opts.shardSize - 1) / s.opts.shardSize
}

func (s FleetSpec) fingerprint() checkpointFingerprint {
	alpha := NewAggregate(s.opts.alpha).alpha
	return fingerprintFor("fleet", s.Tenants, s.Days, s.Seed, s.opts.shardSize, alpha)
}

// ShardResult is one shard's completed slice of the fleet, handed to the
// Stream visitor in shard-index order. Agg holds only mergeable statistics;
// the tenants themselves are already gone.
type ShardResult struct {
	// Index is the shard number within the full run, 0-based and strictly
	// increasing across visits. A resumed run starts at the first
	// unfinished shard.
	Index int
	// FirstTenant is the fleet-wide ID of the shard's first tenant.
	FirstTenant int
	// Tenants is the number of tenants in this shard (the last shard may
	// be short).
	Tenants int
	// Agg is the shard's aggregate. It is owned by the pipeline: read it
	// during the visit, but don't retain it after returning.
	Agg *Aggregate
}

// StreamResult is the outcome of a streaming fleet run.
type StreamResult struct {
	// Analysis is the Section 2.2 study, identical to the deprecated
	// Analyze on the same (seed, tenants, days) except for sketch-resolution
	// IEICDF.
	Analysis Analysis
	// Aggregate is the merged fleet-wide aggregate, for callers that want
	// quantiles beyond what Analysis carries.
	Aggregate *Aggregate
	// Tenants and Shards record the processed sizes; ResumedShards is how
	// many shards were skipped thanks to a checkpoint.
	Tenants       int
	Shards        int
	ResumedShards int
}

// Stream runs the fleet study shard by shard. Each shard generates its
// tenants from per-tenant SplitSeed RNG streams (bit-identical to
// GenerateFleet), folds them into a shard Aggregate while reusing one
// demand/assignment/event buffer set across the whole shard, and discards
// them. Shards execute in parallel but merge — and visit, when visit is
// non-nil — in shard-index order, so the merged result is deterministic at
// any worker count. visit may return an error to abort the run.
func Stream(ctx context.Context, spec FleetSpec, visit func(ShardResult) error) (StreamResult, error) {
	o := spec.opts
	if o.shardSize <= 0 {
		return StreamResult{}, fmt.Errorf("%w: use NewFleetSpec", ErrInvalidSpec)
	}
	cat := o.catalog
	if cat == nil {
		cat = resource.DefaultCatalog()
	}
	shards := spec.Shards()
	total := NewAggregate(o.alpha)

	start, resumed, err := resumeAggregate(spec, total, shards)
	if err != nil {
		return StreamResult{}, err
	}

	execOpts := exec.Options{Workers: o.workers, OnProgress: o.progress, ProgressEvery: 1}
	sinceCkpt := 0
	err = exec.StreamOrdered(ctx, shards-start, execOpts, 0,
		func(ctx context.Context, i int) (ShardResult, error) {
			return runShard(ctx, spec, cat, start+i)
		},
		func(_ int, sr ShardResult) error {
			if visit != nil {
				if err := visit(sr); err != nil {
					return err
				}
			}
			if err := total.Merge(sr.Agg); err != nil {
				return err
			}
			sinceCkpt++
			if o.checkpoint != "" && sinceCkpt >= o.checkpointEvery && sr.Index+1 < shards {
				if err := checkpointAggregate(spec, total, sr.Index+1); err != nil {
					return err
				}
				sinceCkpt = 0
			}
			return nil
		})
	if err != nil {
		return StreamResult{}, err
	}
	if o.checkpoint != "" {
		if err := checkpointAggregate(spec, total, shards); err != nil {
			return StreamResult{}, err
		}
	}
	return StreamResult{
		Analysis:      total.Analysis(),
		Aggregate:     total,
		Tenants:       spec.Tenants,
		Shards:        shards,
		ResumedShards: resumed,
	}, nil
}

// runShard generates and analyzes one shard's tenants with shard-local
// scratch buffers. One rand.Rand is reseeded per tenant — bit-identical to
// a fresh rand.New(rand.NewSource(...)) — so the warm path allocates no
// per-tenant RNG state.
func runShard(ctx context.Context, spec FleetSpec, cat *resource.Catalog, shard int) (ShardResult, error) {
	o := spec.opts
	first := shard * o.shardSize
	count := o.shardSize
	if first+count > spec.Tenants {
		count = spec.Tenants - first
	}
	agg := NewAggregate(o.alpha)
	rng := rand.New(rand.NewSource(0))
	demand := make([]resource.Vector, spec.Days*IntervalsPerDay)
	var containers []resource.Container
	var events []ChangeEvent
	for i := 0; i < count; i++ {
		if err := ctx.Err(); err != nil {
			return ShardResult{}, err
		}
		id := first + i
		rng.Seed(exec.SplitSeed(spec.Seed, int64(id)))
		t := generateTenantInto(id, spec.Days, rng, demand)
		containers = assignContainersInto(&t, cat, containers)
		events = changeEventsInto(containers, events)
		agg.ObserveTenant(&t, events)
	}
	return ShardResult{Index: shard, FirstTenant: first, Tenants: count, Agg: agg}, nil
}

func resumeAggregate(spec FleetSpec, total *Aggregate, shards int) (start, resumed int, err error) {
	if spec.opts.checkpoint == "" {
		return 0, 0, nil
	}
	next, payload, ok, err := readCheckpoint(spec.opts.fs, spec.opts.checkpoint, spec.fingerprint())
	if err != nil || !ok {
		return 0, 0, err
	}
	if next > shards {
		return 0, 0, fmt.Errorf("fleet: checkpoint %s claims %d shards done of %d", spec.opts.checkpoint, next, shards)
	}
	if err := total.UnmarshalBinary(payload); err != nil {
		return 0, 0, err
	}
	return next, next, nil
}

func checkpointAggregate(spec FleetSpec, total *Aggregate, nextShard int) error {
	payload, err := total.MarshalBinary()
	if err != nil {
		return err
	}
	return writeCheckpoint(spec.opts.fs, spec.opts.checkpoint, spec.fingerprint(), nextShard, payload)
}
