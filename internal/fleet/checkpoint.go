package fleet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"math"

	"daasscale/internal/fsio"
)

// Checkpoint files let a 100k–1M-tenant run be killed and resumed without
// redoing finished shards. The format is a fingerprint — run kind, problem
// dimensions, seed, shard size and sketch accuracy — followed by the next
// shard index and an opaque payload (the merged aggregate, or the
// calibration digests). Because shards are merged in index order and all
// mergeable state is exact, a resumed run's final state is bit-identical to
// an uninterrupted one; a fingerprint mismatch (different spec) is an error
// rather than a silent restart.

const checkpointMagic = uint32(0x46434b31) // "FCK1"

// checkpointFingerprint pins a checkpoint file to one exact run
// configuration.
type checkpointFingerprint struct {
	Kind      string // "fleet" or "calibration"
	DimA      int64  // tenants / configs
	DimB      int64  // days / intervalsPer
	Seed      int64
	ShardSize int64
	AlphaBits uint64 // sketch accuracy, exact IEEE bits
}

func (f checkpointFingerprint) encode() []byte {
	buf := make([]byte, 0, 64)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.Kind)))
	buf = append(buf, f.Kind...)
	for _, v := range []uint64{uint64(f.DimA), uint64(f.DimB), uint64(f.Seed), uint64(f.ShardSize), f.AlphaBits} {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	return buf
}

func fingerprintFor(kind string, dimA, dimB int, seed int64, shardSize int, alpha float64) checkpointFingerprint {
	return checkpointFingerprint{
		Kind:      kind,
		DimA:      int64(dimA),
		DimB:      int64(dimB),
		Seed:      seed,
		ShardSize: int64(shardSize),
		AlphaBits: math.Float64bits(alpha),
	}
}

// writeCheckpoint atomically replaces path with a checkpoint holding the
// fingerprint, the index of the next shard to run, and payload. The write
// goes through fsio.WriteFileAtomic — temp file in the same directory,
// fsync'd *before* the rename, directory fsync'd after — so a kill or
// power loss mid-write leaves either the old checkpoint or the complete
// new one, never a zero-length or torn file. (The earlier rename-only
// implementation was atomic against process kills but not against power
// loss: without the data fsync the rename could land pointing at
// unsynced, partial contents.) All I/O goes through fsys so the
// crash-consistency harness can fail or tear any step.
func writeCheckpoint(fsys fsio.FS, path string, fp checkpointFingerprint, nextShard int, payload []byte) error {
	fpb := fp.encode()
	buf := make([]byte, 0, 16+len(fpb)+len(payload))
	buf = binary.LittleEndian.AppendUint32(buf, checkpointMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fpb)))
	buf = append(buf, fpb...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(nextShard))
	buf = append(buf, payload...)

	if err := fsio.WriteFileAtomicFS(fsys, path, buf, 0o644); err != nil {
		return fmt.Errorf("fleet: checkpoint: %w", err)
	}
	return nil
}

// readCheckpoint loads path. A missing file returns ok=false with no error
// (fresh start); a present file with a different fingerprint is an error —
// resuming someone else's run would silently corrupt the statistics.
func readCheckpoint(fsys fsio.FS, path string, fp checkpointFingerprint) (nextShard int, payload []byte, ok bool, err error) {
	data, err := fsys.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil, false, nil
	}
	if err != nil {
		return 0, nil, false, fmt.Errorf("fleet: checkpoint: %w", err)
	}
	r := aggReader{buf: data}
	if magic := r.u32(); r.err != nil || magic != checkpointMagic {
		return 0, nil, false, fmt.Errorf("fleet: %s is not a checkpoint file", path)
	}
	fpLen := int(r.u32())
	got := r.take(fpLen)
	next := r.i64()
	if r.err != nil {
		return 0, nil, false, fmt.Errorf("fleet: truncated checkpoint %s", path)
	}
	if want := fp.encode(); string(got) != string(want) {
		return 0, nil, false, fmt.Errorf("fleet: checkpoint %s was written by a different run spec (kind/size/seed/shard/accuracy mismatch)", path)
	}
	if next < 0 {
		return 0, nil, false, fmt.Errorf("fleet: checkpoint %s has negative shard index", path)
	}
	return int(next), data[r.off:], true, nil
}
