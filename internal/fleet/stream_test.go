package fleet

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"daasscale/internal/exec"
	"daasscale/internal/resource"
)

// TestDaysRoundsUpPartialSeries is the regression test for the integer
// truncation bug: a demand series that is not a whole number of days used
// to under-count (1.5 days → 1), silently dropping the partial day from
// every changes-per-day statistic.
func TestDaysRoundsUpPartialSeries(t *testing.T) {
	cases := []struct {
		intervals int
		want      int
	}{
		{0, 0},
		{1, 1},
		{IntervalsPerDay - 1, 1},
		{IntervalsPerDay, 1},
		{IntervalsPerDay + 1, 2},
		{IntervalsPerDay * 3 / 2, 2}, // the 1.5-day case
		{IntervalsPerDay * 7, 7},
	}
	for _, c := range cases {
		tn := Tenant{Demand: make([]resource.Vector, c.intervals)}
		if got := tn.Days(); got != c.want {
			t.Errorf("Days() with %d intervals = %d, want %d", c.intervals, got, c.want)
		}
	}
}

func mustFleetSpec(t *testing.T, tenants, days int, seed int64, opts ...FleetOption) FleetSpec {
	t.Helper()
	spec, err := NewFleetSpec(tenants, days, seed, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestNewFleetSpecValidation(t *testing.T) {
	if _, err := NewFleetSpec(-1, 7, 1); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("negative tenants: err = %v", err)
	}
	if _, err := NewFleetSpec(10, 0, 1); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("zero days: err = %v", err)
	}
	if _, err := NewCalibrationSpec(-1, 4, 1); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("negative configs: err = %v", err)
	}
	if _, err := NewCalibrationSpec(4, 0, 1); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("zero intervals: err = %v", err)
	}
	spec := mustFleetSpec(t, 1000, 3, 1, WithShardSize(128))
	if got := spec.Shards(); got != 8 {
		t.Errorf("Shards() = %d, want 8", got)
	}
}

// TestStreamMatchesAnalyzeOracle checks the streaming pipeline against the
// deprecated in-memory path on a 1k fleet: every Analysis field derived
// from integer counters must be bit-identical, and the sketch-resolution
// IEI quantiles must be within the sketch accuracy of the exact sample
// quantiles.
func TestStreamMatchesAnalyzeOracle(t *testing.T) {
	const tenants, days, seed = 1000, 2, 4242
	cat := resource.DefaultCatalog()

	oracle := Analyze(GenerateFleet(tenants, days, seed), cat)
	res, err := Stream(context.Background(), mustFleetSpec(t, tenants, days, seed, WithShardSize(128)), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Analysis

	if got.Tenants != oracle.Tenants || got.TotalChanges != oracle.TotalChanges {
		t.Errorf("counts differ: got (%d, %d), want (%d, %d)",
			got.Tenants, got.TotalChanges, oracle.Tenants, oracle.TotalChanges)
	}
	if got.IEIWithin60Min != oracle.IEIWithin60Min {
		t.Errorf("IEIWithin60Min = %v, want %v (must be bit-identical)", got.IEIWithin60Min, oracle.IEIWithin60Min)
	}
	if !reflect.DeepEqual(got.ChangesPerDayHist, oracle.ChangesPerDayHist) {
		t.Errorf("ChangesPerDayHist differs:\n got %+v\nwant %+v", got.ChangesPerDayHist, oracle.ChangesPerDayHist)
	}
	for _, f := range []struct {
		name     string
		got, exp float64
	}{
		{"FracAtLeastOnePerDay", got.FracAtLeastOnePerDay, oracle.FracAtLeastOnePerDay},
		{"FracAtLeastSixPerDay", got.FracAtLeastSixPerDay, oracle.FracAtLeastSixPerDay},
		{"FracMoreThan24PerDay", got.FracMoreThan24PerDay, oracle.FracMoreThan24PerDay},
		{"OneStepShare", got.OneStepShare, oracle.OneStepShare},
		{"AtMostTwoStepsShare", got.AtMostTwoStepsShare, oracle.AtMostTwoStepsShare},
	} {
		if f.got != f.exp {
			t.Errorf("%s = %v, want %v (must be bit-identical)", f.name, f.got, f.exp)
		}
	}

	// The IEI sketch quantiles vs the exact inter-event intervals,
	// recomputed here from the oracle fleet.
	var iei []float64
	fleet := GenerateFleet(tenants, days, seed)
	for i := range fleet {
		events := ChangeEvents(AssignContainers(&fleet[i], cat))
		for j := 1; j < len(events); j++ {
			iei = append(iei, float64(events[j].Interval-events[j-1].Interval)*5)
		}
	}
	sort.Float64s(iei)
	sk := res.Aggregate.IEISketch()
	if int(sk.Count()) != len(iei) {
		t.Fatalf("sketch holds %d intervals, oracle has %d", sk.Count(), len(iei))
	}
	alpha := sk.Accuracy()
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		k := int(math.Ceil(q * float64(len(iei)-1)))
		exact := iei[k]
		approx := sk.Quantile(q)
		if math.Abs(approx-exact) > alpha*math.Abs(exact)+1e-9 {
			t.Errorf("IEI q=%v: sketch %v vs exact %v exceeds relative accuracy %v", q, approx, exact, alpha)
		}
	}
}

// TestStreamBitIdenticalAcrossWorkersAndShards is the determinism
// acceptance criterion: the merged aggregate — not just the derived
// Analysis — must be byte-for-byte identical at any worker count and any
// shard size.
func TestStreamBitIdenticalAcrossWorkersAndShards(t *testing.T) {
	const tenants, days, seed = 300, 2, 99
	run := func(workers, shard int) (Analysis, []byte) {
		res, err := Stream(context.Background(),
			mustFleetSpec(t, tenants, days, seed, WithShardSize(shard), WithParallelism(workers)), nil)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := res.Aggregate.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return res.Analysis, raw
	}
	wantA, wantRaw := run(1, 64)
	for _, c := range []struct{ workers, shard int }{{4, 64}, {4, 17}, {2, 300}, {8, 1}} {
		gotA, gotRaw := run(c.workers, c.shard)
		if !reflect.DeepEqual(gotA, wantA) {
			t.Errorf("workers=%d shard=%d: Analysis differs from serial run", c.workers, c.shard)
		}
		if string(gotRaw) != string(wantRaw) {
			t.Errorf("workers=%d shard=%d: aggregate bytes differ from serial run", c.workers, c.shard)
		}
	}
}

// TestStreamVisitor checks the visitor contract: shards arrive in index
// order with correct extents, and a visitor error aborts the run.
func TestStreamVisitor(t *testing.T) {
	const tenants, shard = 100, 32
	var visited []ShardResult
	res, err := Stream(context.Background(),
		mustFleetSpec(t, tenants, 1, 7, WithShardSize(shard), WithParallelism(4)),
		func(sr ShardResult) error {
			visited = append(visited, ShardResult{Index: sr.Index, FirstTenant: sr.FirstTenant, Tenants: sr.Tenants})
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	want := []ShardResult{{0, 0, 32, nil}, {1, 32, 32, nil}, {2, 64, 32, nil}, {3, 96, 4, nil}}
	if !reflect.DeepEqual(visited, want) {
		t.Errorf("visits = %+v, want %+v", visited, want)
	}
	if res.Shards != 4 || res.Tenants != tenants {
		t.Errorf("result sizes = (%d shards, %d tenants)", res.Shards, res.Tenants)
	}

	boom := errors.New("boom")
	_, err = Stream(context.Background(),
		mustFleetSpec(t, tenants, 1, 7, WithShardSize(shard)),
		func(sr ShardResult) error {
			if sr.Index == 1 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Errorf("visitor error: err = %v", err)
	}
}

// TestStreamWarmPathAllocs enforces the allocation ceiling on the
// per-tenant warm path: shard buffers are reused, so amortized allocations
// per tenant must stay flat (sketch map growth and the occasional buffer
// regrow only).
func TestStreamWarmPathAllocs(t *testing.T) {
	const tenants, shard = 768, 256
	spec := mustFleetSpec(t, tenants, 1, 5, WithShardSize(shard), WithParallelism(1))

	// Warm up once (pool setup, catalog, first-shard buffer growth).
	if _, err := Stream(context.Background(), spec, nil); err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := Stream(context.Background(), spec, nil); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	perTenant := float64(after.Mallocs-before.Mallocs) / float64(tenants)
	// The ceiling is deliberately loose (goroutine + channel setup per run,
	// sketch map rehashing) but far below the ~300 allocations a
	// slice-materialized tenant costs.
	const ceiling = 48.0
	if perTenant > ceiling {
		t.Errorf("warm path allocates %.1f objects/tenant, ceiling %v", perTenant, ceiling)
	}
}

// TestStreamCalibrationBitIdentical mirrors the fleet determinism test for
// the calibration pipeline.
func TestStreamCalibrationBitIdentical(t *testing.T) {
	const configs, intervals, seed = 10, 2, 31
	run := func(workers, shard int) ([]byte, CalibrationResult) {
		spec, err := NewCalibrationSpec(configs, intervals, seed, WithShardSize(shard), WithParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		res, err := StreamCalibration(context.Background(), spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := encodeCalibrationDigests(res.Digests)
		if err != nil {
			t.Fatal(err)
		}
		return raw, res
	}
	wantRaw, wantRes := run(1, 4)
	for _, c := range []struct{ workers, shard int }{{4, 4}, {2, 3}, {4, 1}, {1, 10}} {
		gotRaw, gotRes := run(c.workers, c.shard)
		if string(gotRaw) != string(wantRaw) {
			t.Errorf("workers=%d shard=%d: digest bytes differ", c.workers, c.shard)
		}
		if !reflect.DeepEqual(gotRes.Thresholds, wantRes.Thresholds) {
			t.Errorf("workers=%d shard=%d: thresholds differ", c.workers, c.shard)
		}
	}
}

// TestWaitDigestMatchesExactCalibrate feeds the identical sample stream to
// the deprecated exact pipeline and to WaitDigests, and checks the
// sketch-derived thresholds stay within the documented error bound of the
// exact ones, with correlation exactly equal while the reservoir holds
// every sample.
func TestWaitDigestMatchesExactCalibrate(t *testing.T) {
	samples, err := CollectWaitSamples(120, 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	digests := newCalibrationDigests(0)
	for _, s := range samples {
		for _, d := range digests {
			d.ObserveSample(s)
		}
	}
	exact := Calibrate(samples)
	approx := CalibrateDigests(digests)
	for _, d := range digests {
		k := d.Kind()
		if d.LowCount() < 30 || d.HighCount() < 30 {
			t.Fatalf("kind %v: bands too small (%d low, %d high) to exercise calibration", k, d.LowCount(), d.HighCount())
		}
		alpha := d.LowMs().Accuracy()
		for _, pair := range []struct {
			name     string
			got, exp float64
		}{
			{"WaitLowMs", approx.WaitLowMs[k], exact.WaitLowMs[k]},
			{"WaitHighMs", approx.WaitHighMs[k], exact.WaitHighMs[k]},
		} {
			// Clamping can only shrink the gap, so the pre-clamp bound holds.
			if math.Abs(pair.got-pair.exp) > alpha*pair.exp+1e-9 {
				t.Errorf("kind %v %s: digest %v vs exact %v exceeds relative accuracy %v",
					k, pair.name, pair.got, pair.exp, alpha)
			}
		}

		exactCorr, err := Correlation(samples, k)
		if err != nil {
			t.Fatal(err)
		}
		gotCorr, err := d.Correlation()
		if err != nil {
			t.Fatal(err)
		}
		if gotCorr != exactCorr {
			t.Errorf("kind %v: digest correlation %v != exact %v (reservoir holds all samples)", k, gotCorr, exactCorr)
		}

		exactSep := SplitByUtilization(samples, k).Separation()
		gotSep := d.Separation()
		if relDiff(gotSep, exactSep) > 3*alpha {
			t.Errorf("kind %v: digest separation %v vs exact %v", k, gotSep, exactSep)
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) / den
}

// TestStream10kSmoke is the CI smoke: a 10k-tenant streaming run completes
// with shard-bounded memory and a sane Analysis. Kept under -short because
// it is the budget version of the 100k benchmark run.
func TestStream10kSmoke(t *testing.T) {
	tenants := 10_000
	if testing.Short() {
		tenants = 2_000
	}
	res, err := Stream(context.Background(),
		mustFleetSpec(t, tenants, 1, benchLikeSeed, WithShardSize(512)), nil)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Analysis
	if a.Tenants != tenants || a.TotalChanges == 0 {
		t.Fatalf("smoke analysis empty: %+v", a)
	}
	if a.IEIWithin60Min <= 0 || a.IEIWithin60Min > 1 {
		t.Errorf("IEIWithin60Min = %v out of range", a.IEIWithin60Min)
	}
	if a.OneStepShare <= 0.5 {
		t.Errorf("OneStepShare = %v, paper reports most changes are single-step", a.OneStepShare)
	}
}

const benchLikeSeed = 42

// TestWaitDigestMergeKindMismatch pins the guard against merging digests of
// different resources.
func TestWaitDigestMergeKindMismatch(t *testing.T) {
	a := NewWaitDigest(resource.CPU, 0)
	b := NewWaitDigest(resource.DiskIO, 0)
	if err := a.Merge(b); err == nil {
		t.Error("merging CPU and DiskIO digests should fail")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("nil merge: %v", err)
	}
}

// TestStreamContextCancel checks a canceled context aborts the run with the
// context error.
func TestStreamContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Stream(ctx, mustFleetSpec(t, 5000, 1, 3, WithShardSize(64)), nil)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestAggregateBinaryRoundTrip checks aggregate state survives its
// serialization exactly, including archetype counters.
func TestAggregateBinaryRoundTrip(t *testing.T) {
	res, err := Stream(context.Background(), mustFleetSpec(t, 100, 1, 11, WithShardSize(32)), nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := res.Aggregate.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back := new(Aggregate)
	if err := back.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	raw2, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Error("aggregate round trip is not byte-identical")
	}
	if !reflect.DeepEqual(back.Analysis(), res.Analysis) {
		t.Error("round-tripped aggregate renders a different Analysis")
	}
	if !reflect.DeepEqual(back.ArchetypeChangesPerDay(), res.Aggregate.ArchetypeChangesPerDay()) {
		t.Error("round-tripped archetype rates differ")
	}
	if err := back.UnmarshalBinary(raw[:len(raw)-3]); err == nil {
		t.Error("truncated aggregate should not decode")
	}
	if err := back.UnmarshalBinary(append(append([]byte(nil), raw...), 0)); err == nil {
		t.Error("trailing bytes should not decode")
	}
}

// TestArchetypeRatesOrdering sanity-checks the streaming per-archetype
// rates: spiky tenants must change containers far more often than steady
// ones, mirroring the deprecated ArchetypeBreakdown's shape.
func TestArchetypeRatesOrdering(t *testing.T) {
	res, err := Stream(context.Background(), mustFleetSpec(t, 1000, 2, 8, WithShardSize(200)), nil)
	if err != nil {
		t.Fatal(err)
	}
	rates := res.Aggregate.ArchetypeChangesPerDay()
	if len(rates) != int(numArchetypes) {
		t.Fatalf("rates for %d archetypes, want %d", len(rates), int(numArchetypes))
	}
	if rates[Spiky] <= rates[Steady] {
		t.Errorf("spiky rate %v should exceed steady rate %v", rates[Spiky], rates[Steady])
	}
}

// TestDeprecatedWrappersStillExact pins that the deprecated entry points
// remain the exact oracle: GenerateFleet through the buffer-reusing
// internals must equal a direct per-tenant generation.
func TestDeprecatedWrappersStillExact(t *testing.T) {
	f1 := GenerateFleet(50, 2, 123)
	f2, err := GenerateFleetContext(context.Background(), 50, 2, 123, exec.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Error("GenerateFleet and GenerateFleetContext disagree")
	}
}
