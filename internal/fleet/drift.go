package fleet

import (
	"fmt"
	"io"
	"math"

	"daasscale/internal/estimator"
	"daasscale/internal/resource"
)

// The paper (Section 4.1): "As the software evolves, new hardware SKUs are
// deployed in the data centers, and new container sizes are supported in
// the service, these thresholds need to be re-tuned. Updating these
// thresholds incrementally is automated through reports and alerts
// expressed over the aggregate telemetry collected from the service." This
// file is that report: it compares the thresholds currently in force with a
// fresh calibration and flags the resources whose thresholds have drifted.

// Drift describes the threshold movement for one resource between the
// active calibration and a fresh one.
type Drift struct {
	Kind             resource.Kind
	OldLow, NewLow   float64
	OldHigh, NewHigh float64
	// RelChange is the larger of the two relative changes (low and high).
	RelChange float64
}

// Significant reports whether the drift exceeds the given relative
// tolerance (e.g. 0.25 = alert when a threshold moved by more than 25%).
func (d Drift) Significant(tolerance float64) bool { return d.RelChange > tolerance }

// ThresholdDrift compares two calibrations per resource.
func ThresholdDrift(active, fresh estimator.Thresholds) []Drift {
	rel := func(old, new float64) float64 {
		if old == 0 {
			if new == 0 {
				return 0
			}
			return math.Inf(1)
		}
		return math.Abs(new-old) / old
	}
	var out []Drift
	for _, k := range resource.Kinds {
		d := Drift{
			Kind:    k,
			OldLow:  active.WaitLowMs[k],
			NewLow:  fresh.WaitLowMs[k],
			OldHigh: active.WaitHighMs[k],
			NewHigh: fresh.WaitHighMs[k],
		}
		d.RelChange = math.Max(rel(d.OldLow, d.NewLow), rel(d.OldHigh, d.NewHigh))
		out = append(out, d)
	}
	return out
}

// WriteDriftReport renders the drift table with alert markers — the report
// a service administrator reviews before promoting a new calibration.
func WriteDriftReport(w io.Writer, drifts []Drift, tolerance float64) {
	fmt.Fprintf(w, "threshold drift report (alert tolerance ±%.0f%%)\n", tolerance*100)
	fmt.Fprintf(w, "  %-8s %12s %12s %12s %12s %8s\n", "resource", "low (old)", "low (new)", "high (old)", "high (new)", "drift")
	for _, d := range drifts {
		mark := ""
		if d.Significant(tolerance) {
			mark = "  ← ALERT"
		}
		fmt.Fprintf(w, "  %-8s %12.0f %12.0f %12.0f %12.0f %7.0f%%%s\n",
			d.Kind, d.OldLow, d.NewLow, d.OldHigh, d.NewHigh, d.RelChange*100, mark)
	}
}
