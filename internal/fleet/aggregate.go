package fleet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"daasscale/internal/stats"
)

// changesPerDayEdges are the paper's Figure 2(b) histogram edges.
var changesPerDayEdges = []float64{1, 2, 3, 6, 12, 24}

// Aggregate is the incremental form of Analysis: every Section 2.2
// statistic, accumulated tenant by tenant so the fleet never has to exist
// as a slice. All state is integer counters plus one mergeable quantile
// sketch (the inter-event-interval distribution), which makes Merge exactly
// commutative and associative — the resulting Analysis is bit-identical for
// any worker count, any shard size and any merge tree over the same
// tenants, and survives a checkpoint round trip unchanged.
type Aggregate struct {
	alpha float64

	tenants      int64
	totalChanges int64
	oneStep      int64
	atMostTwo    int64

	ieiCount    int64 // inter-event intervals observed
	ieiWithin60 int64 // ≤ 60 minutes
	iei         *stats.Sketch

	tenantsWithDays int64 // tenants contributing a changes/day observation
	histCounts      []int64
	ge1, ge6, gt24  int64

	archTenants [numArchetypes]int64
	archChanges [numArchetypes]int64
	archDays    [numArchetypes]int64
}

// NewAggregate builds an empty aggregate whose IEI sketch has relative
// accuracy alpha (non-positive selects stats.DefaultSketchAccuracy).
func NewAggregate(alpha float64) *Aggregate {
	s := stats.NewSketch(alpha)
	return &Aggregate{
		alpha:      s.Accuracy(),
		iei:        s,
		histCounts: make([]int64, len(changesPerDayEdges)+1),
	}
}

// Tenants returns the number of tenants observed.
func (a *Aggregate) Tenants() int { return int(a.tenants) }

// TotalChanges returns the number of container-change events observed.
func (a *Aggregate) TotalChanges() int { return int(a.totalChanges) }

// IEISketch exposes the inter-event-interval sketch (minutes) for quantile
// queries beyond what Analysis carries.
func (a *Aggregate) IEISketch() *stats.Sketch { return a.iei }

// ObserveTenant folds one tenant's change events into the aggregate and
// forgets the tenant: the demand series can be discarded (or its buffer
// reused) as soon as this returns.
func (a *Aggregate) ObserveTenant(t *Tenant, events []ChangeEvent) {
	a.tenants++
	arch := t.Archetype
	if arch < 0 || arch >= numArchetypes {
		arch = numArchetypes // impossible by construction; guard the arrays
	} else {
		a.archTenants[arch]++
		a.archChanges[arch] += int64(len(events))
		a.archDays[arch] += int64(t.Days())
	}
	a.totalChanges += int64(len(events))
	for j := range events {
		if j > 0 {
			m := float64(events[j].Interval-events[j-1].Interval) * 5
			a.ieiCount++
			if m <= 60 {
				a.ieiWithin60++
			}
			a.iei.Add(m)
		}
		if events[j].StepDelta() == 1 {
			a.oneStep++
		}
		if events[j].StepDelta() <= 2 {
			a.atMostTwo++
		}
	}
	days := t.Days()
	if days > 0 {
		a.tenantsWithDays++
		cpd := float64(len(events)) / float64(days)
		// Same edge semantics as stats.Histogram: a value equal to an edge
		// goes right.
		i := sort.SearchFloat64s(changesPerDayEdges, cpd)
		if i < len(changesPerDayEdges) && cpd == changesPerDayEdges[i] {
			i++
		}
		a.histCounts[i]++
		if cpd >= 1 {
			a.ge1++
		}
		if cpd >= 6 {
			a.ge6++
		}
		if cpd > 24 {
			a.gt24++
		}
	}
}

// Merge folds o into a. Counter addition and sketch merging are exact, so
// Merge is commutative and associative bit-for-bit; merging aggregates with
// different sketch accuracies fails.
func (a *Aggregate) Merge(o *Aggregate) error {
	if o == nil {
		return nil
	}
	if err := a.iei.Merge(o.iei); err != nil {
		return err
	}
	a.tenants += o.tenants
	a.totalChanges += o.totalChanges
	a.oneStep += o.oneStep
	a.atMostTwo += o.atMostTwo
	a.ieiCount += o.ieiCount
	a.ieiWithin60 += o.ieiWithin60
	a.tenantsWithDays += o.tenantsWithDays
	for i := range a.histCounts {
		a.histCounts[i] += o.histCounts[i]
	}
	a.ge1 += o.ge1
	a.ge6 += o.ge6
	a.gt24 += o.gt24
	for i := range a.archTenants {
		a.archTenants[i] += o.archTenants[i]
		a.archChanges[i] += o.archChanges[i]
		a.archDays[i] += o.archDays[i]
	}
	return nil
}

// ArchetypeChangesPerDay reports the fleet-level container-change rate per
// archetype: total changes divided by total tenant-days. Unlike the
// deprecated ArchetypeBreakdown (the mean of per-tenant rates) this is a
// ratio of integer totals, so it streams and merges exactly; the two agree
// in shape — spiky ≫ steady — but not in decimals.
func (a *Aggregate) ArchetypeChangesPerDay() map[Archetype]float64 {
	out := map[Archetype]float64{}
	for i := Archetype(0); i < numArchetypes; i++ {
		if a.archDays[i] > 0 {
			out[i] = float64(a.archChanges[i]) / float64(a.archDays[i])
		}
	}
	return out
}

// Analysis renders the aggregate as the Section 2.2 Analysis. Every field
// is derived from exact integer counters — bit-identical to the slice-based
// Analyze on the same tenants — except IEICDF, which is the sketch's
// approximation: one point per occupied bin at the bin's lower value bound,
// so probes at observed sample values never under-report (the overcount is
// bounded by the sketch's per-bin resolution).
func (a *Aggregate) Analysis() Analysis {
	out := Analysis{
		Tenants:      int(a.tenants),
		TotalChanges: int(a.totalChanges),
		IEICDF:       a.iei.CDFApprox(),
	}
	if a.ieiCount > 0 {
		out.IEIWithin60Min = float64(a.ieiWithin60) / float64(a.ieiCount)
	}
	buckets := make([]stats.Bucket, len(changesPerDayEdges)+1)
	lo := math.Inf(-1)
	for i, e := range changesPerDayEdges {
		buckets[i] = stats.Bucket{Lo: lo, Hi: e, Count: int(a.histCounts[i])}
		lo = e
	}
	buckets[len(changesPerDayEdges)] = stats.Bucket{Lo: lo, Hi: math.Inf(1), Count: int(a.histCounts[len(changesPerDayEdges)])}
	out.ChangesPerDayHist = buckets
	if a.tenantsWithDays > 0 {
		out.FracAtLeastOnePerDay = float64(a.ge1) / float64(a.tenantsWithDays)
		out.FracAtLeastSixPerDay = float64(a.ge6) / float64(a.tenantsWithDays)
		out.FracMoreThan24PerDay = float64(a.gt24) / float64(a.tenantsWithDays)
	}
	if a.totalChanges > 0 {
		out.OneStepShare = float64(a.oneStep) / float64(a.totalChanges)
		out.AtMostTwoStepsShare = float64(a.atMostTwo) / float64(a.totalChanges)
	}
	return out
}

// --- serialization ---------------------------------------------------------

const aggregateMagic = uint32(0x46414731) // "FAG1"

// MarshalBinary encodes the aggregate deterministically (fixed field order,
// sketch in its own deterministic encoding) for checkpoint files.
func (a *Aggregate) MarshalBinary() ([]byte, error) {
	sk, err := a.iei.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 128+len(sk))
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	i64 := func(v int64) { buf = binary.LittleEndian.AppendUint64(buf, uint64(v)) }
	u32(aggregateMagic)
	i64(a.tenants)
	i64(a.totalChanges)
	i64(a.oneStep)
	i64(a.atMostTwo)
	i64(a.ieiCount)
	i64(a.ieiWithin60)
	i64(a.tenantsWithDays)
	i64(a.ge1)
	i64(a.ge6)
	i64(a.gt24)
	u32(uint32(len(a.histCounts)))
	for _, c := range a.histCounts {
		i64(c)
	}
	u32(uint32(numArchetypes))
	for i := 0; i < int(numArchetypes); i++ {
		i64(a.archTenants[i])
		i64(a.archChanges[i])
		i64(a.archDays[i])
	}
	u32(uint32(len(sk)))
	buf = append(buf, sk...)
	return buf, nil
}

// UnmarshalBinary decodes an aggregate encoded by MarshalBinary, replacing
// a's state entirely.
func (a *Aggregate) UnmarshalBinary(data []byte) error {
	r := aggReader{buf: data}
	if magic := r.u32(); magic != aggregateMagic {
		return fmt.Errorf("fleet: bad aggregate encoding magic %#x", magic)
	}
	tenants := r.i64()
	totalChanges := r.i64()
	oneStep := r.i64()
	atMostTwo := r.i64()
	ieiCount := r.i64()
	ieiWithin60 := r.i64()
	tenantsWithDays := r.i64()
	ge1, ge6, gt24 := r.i64(), r.i64(), r.i64()
	nHist := int(r.u32())
	if r.err == nil && nHist != len(changesPerDayEdges)+1 {
		return fmt.Errorf("fleet: aggregate has %d histogram buckets, want %d", nHist, len(changesPerDayEdges)+1)
	}
	hist := make([]int64, nHist)
	for i := range hist {
		hist[i] = r.i64()
	}
	nArch := int(r.u32())
	if r.err == nil && nArch != int(numArchetypes) {
		return fmt.Errorf("fleet: aggregate has %d archetypes, want %d", nArch, int(numArchetypes))
	}
	var archT, archC, archD [numArchetypes]int64
	for i := 0; i < nArch && r.err == nil; i++ {
		archT[i], archC[i], archD[i] = r.i64(), r.i64(), r.i64()
	}
	skLen := int(r.u32())
	sk := r.take(skLen)
	if r.err != nil {
		return fmt.Errorf("fleet: truncated aggregate encoding: %w", r.err)
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("fleet: %d trailing bytes after aggregate", len(r.buf)-r.off)
	}
	iei := new(stats.Sketch)
	if err := iei.UnmarshalBinary(sk); err != nil {
		return err
	}
	*a = Aggregate{
		alpha:           iei.Accuracy(),
		iei:             iei,
		tenants:         tenants,
		totalChanges:    totalChanges,
		oneStep:         oneStep,
		atMostTwo:       atMostTwo,
		ieiCount:        ieiCount,
		ieiWithin60:     ieiWithin60,
		tenantsWithDays: tenantsWithDays,
		histCounts:      hist,
		ge1:             ge1,
		ge6:             ge6,
		gt24:            gt24,
		archTenants:     archT,
		archChanges:     archC,
		archDays:        archD,
	}
	return nil
}

// aggReader mirrors the error-latching reader used by the stats sketch.
type aggReader struct {
	buf []byte
	off int
	err error
}

func (r *aggReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.err = errors.New("unexpected end of data")
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *aggReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *aggReader) i64() int64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}
