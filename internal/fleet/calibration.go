package fleet

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"

	"daasscale/internal/engine"
	"daasscale/internal/estimator"
	"daasscale/internal/exec"
	"daasscale/internal/fsio"
	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
	"daasscale/internal/workload"
)

// calibrationKinds are the resources the Section 4.1 calibration covers.
var calibrationKinds = []resource.Kind{resource.CPU, resource.DiskIO}

// CalibrationSpec describes one streaming threshold calibration: how many
// randomized (workload, container, load) configurations to simulate, for
// how many billing intervals each, from which seed. Build it with
// NewCalibrationSpec.
type CalibrationSpec struct {
	Configs      int
	IntervalsPer int
	Seed         int64
	opts         streamOpts
}

// NewCalibrationSpec validates and builds a streaming calibration
// description. The default shard size is scaled down (configs are ~1000×
// more expensive than tenants) unless WithShardSize overrides it.
func NewCalibrationSpec(configs, intervalsPer int, seed int64, options ...FleetOption) (CalibrationSpec, error) {
	if configs < 0 {
		return CalibrationSpec{}, fmt.Errorf("%w: configs = %d", ErrInvalidSpec, configs)
	}
	if intervalsPer <= 0 {
		return CalibrationSpec{}, fmt.Errorf("%w: intervalsPer = %d", ErrInvalidSpec, intervalsPer)
	}
	o := streamOpts{shardSize: 16}
	for _, opt := range options {
		opt(&o)
	}
	if o.checkpointEvery <= 0 {
		o.checkpointEvery = 8
	}
	if o.fs == nil {
		o.fs = fsio.OS
	}
	return CalibrationSpec{Configs: configs, IntervalsPer: intervalsPer, Seed: seed, opts: o}, nil
}

// Shards returns the number of shards the spec splits into.
func (s CalibrationSpec) Shards() int {
	if s.Configs == 0 {
		return 0
	}
	return (s.Configs + s.opts.shardSize - 1) / s.opts.shardSize
}

func (s CalibrationSpec) fingerprint() checkpointFingerprint {
	alpha := NewWaitDigest(resource.CPU, s.opts.alpha).alpha
	return fingerprintFor("calibration", s.Configs, s.IntervalsPer, s.Seed, s.opts.shardSize, alpha)
}

// CalibrationShard is one shard's worth of wait observations, handed to the
// StreamCalibration visitor in shard-index order.
type CalibrationShard struct {
	Index       int
	FirstConfig int
	Configs     int
	// Digests holds one digest per calibration kind (CPU, DiskIO), owned
	// by the pipeline; read during the visit only.
	Digests []*WaitDigest
}

// CalibrationResult is the outcome of a streaming calibration run.
type CalibrationResult struct {
	// Digests are the merged per-kind wait digests, in calibrationKinds
	// order (CPU, DiskIO).
	Digests []*WaitDigest
	// Thresholds are CalibrateDigests(Digests).
	Thresholds estimator.Thresholds
	// Configs and Shards record the processed sizes; ResumedShards is how
	// many shards a checkpoint allowed skipping.
	Configs       int
	Shards        int
	ResumedShards int
}

// StreamCalibration runs the Section 4.1 calibration shard by shard:
// each shard simulates its configurations, folds every interval's
// (utilization, wait) observation into per-kind WaitDigests, and discards
// the engines. Unlike the deprecated CollectWaitSamples — whose single
// sequential RNG makes it inherently serial — each configuration draws its
// randomness from exec.SplitSeed(seed, config), so shards are independent
// and the merged result is bit-identical at any worker count, shard size,
// and checkpoint/resume split. The two sample streams therefore differ for
// the same seed; CollectWaitSamples remains the oracle only for its own
// callers.
func StreamCalibration(ctx context.Context, spec CalibrationSpec, visit func(CalibrationShard) error) (CalibrationResult, error) {
	o := spec.opts
	if o.shardSize <= 0 {
		return CalibrationResult{}, fmt.Errorf("%w: use NewCalibrationSpec", ErrInvalidSpec)
	}
	shards := spec.Shards()
	total := newCalibrationDigests(o.alpha)

	start, resumed, err := resumeCalibration(spec, total, shards)
	if err != nil {
		return CalibrationResult{}, err
	}

	execOpts := exec.Options{Workers: o.workers, OnProgress: o.progress, ProgressEvery: 1}
	sinceCkpt := 0
	err = exec.StreamOrdered(ctx, shards-start, execOpts, 0,
		func(ctx context.Context, i int) (CalibrationShard, error) {
			return runCalibrationShard(ctx, spec, start+i)
		},
		func(_ int, cs CalibrationShard) error {
			if visit != nil {
				if err := visit(cs); err != nil {
					return err
				}
			}
			for k, d := range total {
				if err := d.Merge(cs.Digests[k]); err != nil {
					return err
				}
			}
			sinceCkpt++
			if o.checkpoint != "" && sinceCkpt >= o.checkpointEvery && cs.Index+1 < shards {
				if err := checkpointCalibration(spec, total, cs.Index+1); err != nil {
					return err
				}
				sinceCkpt = 0
			}
			return nil
		})
	if err != nil {
		return CalibrationResult{}, err
	}
	if o.checkpoint != "" {
		if err := checkpointCalibration(spec, total, shards); err != nil {
			return CalibrationResult{}, err
		}
	}
	return CalibrationResult{
		Digests:       total,
		Thresholds:    CalibrateDigests(total),
		Configs:       spec.Configs,
		Shards:        shards,
		ResumedShards: resumed,
	}, nil
}

func newCalibrationDigests(alpha float64) []*WaitDigest {
	out := make([]*WaitDigest, len(calibrationKinds))
	for i, k := range calibrationKinds {
		out[i] = NewWaitDigest(k, alpha)
	}
	return out
}

// runCalibrationShard simulates the shard's configurations. The per-config
// randomized setup mirrors CollectWaitSamples (same workload families,
// container ladder draw, load range and jitter) but draws from a
// config-split RNG so the shard is self-contained.
func runCalibrationShard(ctx context.Context, spec CalibrationSpec, shard int) (CalibrationShard, error) {
	o := spec.opts
	first := shard * o.shardSize
	count := o.shardSize
	if first+count > spec.Configs {
		count = spec.Configs - first
	}
	digests := newCalibrationDigests(o.alpha)
	cat := resource.LockStepCatalog()
	rng := rand.New(rand.NewSource(0))
	var offered []float64 // per-interval load buffer, reused across configs
	for c := first; c < first+count; c++ {
		if err := ctx.Err(); err != nil {
			return CalibrationShard{}, err
		}
		cfgSeed := exec.SplitSeed(spec.Seed, int64(c))
		rng.Seed(cfgSeed)
		var w *workload.Workload
		switch rng.Intn(3) {
		case 0:
			w = workload.TPCC()
		case 1:
			w = workload.DS2()
		default:
			w = workload.CPUIO(workload.CPUIOConfig{
				CPUWeight:       0.2 + rng.Float64()*2,
				IOWeight:        0.2 + rng.Float64()*2,
				LogWeight:       rng.Float64(),
				WorkingSetMB:    512 + rng.Float64()*3000,
				HotspotFraction: 0.9 + rng.Float64()*0.1,
			})
		}
		cont := cat.AtStep(rng.Intn(cat.LadderLen()))
		eng, err := engine.New(w, cont, cfgSeed+13, engine.Options{WarmStart: rng.Float64() < 0.7})
		if err != nil {
			return CalibrationShard{}, err
		}
		rps := rng.Float64() * 700
		if n := eng.TicksPerInterval(); cap(offered) < n {
			offered = make([]float64, n)
		}
		for i := 0; i < spec.IntervalsPer; i++ {
			// The config RNG and the engine's RNG are independent streams,
			// so drawing the interval's jitters up front and batch-ticking
			// preserves both sequences — bit-identical to per-call Tick.
			buf := offered[:eng.TicksPerInterval()]
			for t := range buf {
				jitter := 1 + 0.1*(2*rng.Float64()-1)
				buf[t] = rps * jitter
			}
			eng.TickBatch(buf)
			snap := eng.EndInterval()
			for k, kind := range calibrationKinds {
				wc := telemetry.WaitClassFor(kind)
				digests[k].Observe(snap.Utilization[kind], snap.WaitMs[wc], snap.WaitPct(wc))
			}
		}
	}
	return CalibrationShard{Index: shard, FirstConfig: first, Configs: count, Digests: digests}, nil
}

func resumeCalibration(spec CalibrationSpec, total []*WaitDigest, shards int) (start, resumed int, err error) {
	if spec.opts.checkpoint == "" {
		return 0, 0, nil
	}
	next, payload, ok, err := readCheckpoint(spec.opts.fs, spec.opts.checkpoint, spec.fingerprint())
	if err != nil || !ok {
		return 0, 0, err
	}
	if next > shards {
		return 0, 0, fmt.Errorf("fleet: checkpoint %s claims %d shards done of %d", spec.opts.checkpoint, next, shards)
	}
	if err := decodeCalibrationDigests(payload, total); err != nil {
		return 0, 0, err
	}
	return next, next, nil
}

func checkpointCalibration(spec CalibrationSpec, total []*WaitDigest, nextShard int) error {
	payload, err := encodeCalibrationDigests(total)
	if err != nil {
		return err
	}
	return writeCheckpoint(spec.opts.fs, spec.opts.checkpoint, spec.fingerprint(), nextShard, payload)
}

func encodeCalibrationDigests(digests []*WaitDigest) ([]byte, error) {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(digests)))
	for _, d := range digests {
		b, err := d.MarshalBinary()
		if err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
		buf = append(buf, b...)
	}
	return buf, nil
}

func decodeCalibrationDigests(data []byte, into []*WaitDigest) error {
	r := aggReader{buf: data}
	n := int(r.u32())
	if r.err == nil && n != len(into) {
		return fmt.Errorf("fleet: checkpoint holds %d wait digests, want %d", n, len(into))
	}
	for i := 0; i < len(into); i++ {
		b := r.take(int(r.u32()))
		if r.err != nil {
			return fmt.Errorf("fleet: truncated calibration checkpoint: %w", r.err)
		}
		if err := into[i].UnmarshalBinary(b); err != nil {
			return err
		}
		if into[i].kind != calibrationKinds[i] {
			return fmt.Errorf("fleet: calibration checkpoint digest %d is for %v, want %v", i, into[i].kind, calibrationKinds[i])
		}
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("fleet: %d trailing bytes after calibration digests", len(r.buf)-r.off)
	}
	return nil
}
