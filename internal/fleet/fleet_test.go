package fleet

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"daasscale/internal/exec"
	"daasscale/internal/resource"
	"daasscale/internal/stats"
)

var cat = resource.LockStepCatalog()

func TestArchetypeString(t *testing.T) {
	names := map[Archetype]string{
		Steady: "steady", Diurnal: "diurnal", Bursty: "bursty", Spiky: "spiky", Growing: "growing",
	}
	for a, n := range names {
		if a.String() != n {
			t.Errorf("%d = %q", a, a.String())
		}
	}
	if Archetype(99).String() != "archetype(99)" {
		t.Error("unknown archetype name")
	}
}

func TestGenerateFleetShape(t *testing.T) {
	fleet := GenerateFleet(50, 7, 1)
	if len(fleet) != 50 {
		t.Fatalf("fleet size = %d", len(fleet))
	}
	seen := map[Archetype]bool{}
	for i := range fleet {
		tn := &fleet[i]
		if tn.ID != i {
			t.Errorf("tenant %d has ID %d", i, tn.ID)
		}
		if len(tn.Demand) != 7*IntervalsPerDay {
			t.Fatalf("tenant %d has %d intervals", i, len(tn.Demand))
		}
		if tn.Days() != 7 {
			t.Errorf("tenant %d days = %d", i, tn.Days())
		}
		seen[tn.Archetype] = true
		for j, d := range tn.Demand {
			for _, k := range resource.Kinds {
				if d[k] < 0 {
					t.Fatalf("tenant %d interval %d negative demand %v", i, j, d)
				}
			}
		}
	}
	if len(seen) < 4 {
		t.Errorf("archetype diversity too low: %v", seen)
	}
}

func TestGenerateFleetDeterminism(t *testing.T) {
	a := GenerateFleet(5, 2, 42)
	b := GenerateFleet(5, 2, 42)
	for i := range a {
		for j := range a[i].Demand {
			if a[i].Demand[j] != b[i].Demand[j] {
				t.Fatalf("fleet not deterministic at tenant %d interval %d", i, j)
			}
		}
	}
}

func TestChangeEvents(t *testing.T) {
	assignment := []resource.Container{
		cat.AtStep(0), cat.AtStep(0), cat.AtStep(2), cat.AtStep(1), cat.AtStep(1),
	}
	events := ChangeEvents(assignment)
	if len(events) != 2 {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Interval != 2 || events[0].FromStep != 0 || events[0].ToStep != 2 {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[0].StepDelta() != 2 || events[1].StepDelta() != 1 {
		t.Errorf("step deltas wrong: %+v", events)
	}
}

func TestAnalyzeReproducesFigure2Shape(t *testing.T) {
	// The Section 2.2 claims, as shapes: most changes happen within an hour
	// of the previous one; a large majority of tenants change at least once
	// a day; a substantial fraction change many times a day; and resizes
	// are overwhelmingly small steps (Section 4: ≈90% one step, ≈98% ≤2).
	fleet := GenerateFleet(400, 7, 7)
	a := Analyze(fleet, cat)
	if a.Tenants != 400 || a.TotalChanges == 0 {
		t.Fatalf("analysis empty: %+v", a)
	}
	if a.IEIWithin60Min < 0.6 {
		t.Errorf("IEI within 60 min = %v, want the majority", a.IEIWithin60Min)
	}
	if a.FracAtLeastOnePerDay < 0.6 {
		t.Errorf("tenants with ≥1 change/day = %v, want a large majority", a.FracAtLeastOnePerDay)
	}
	if a.FracAtLeastSixPerDay < 0.3 {
		t.Errorf("tenants with ≥6 changes/day = %v, want a substantial fraction", a.FracAtLeastSixPerDay)
	}
	if a.FracAtLeastOnePerDay < a.FracAtLeastSixPerDay || a.FracAtLeastSixPerDay < a.FracMoreThan24PerDay {
		t.Errorf("cumulative fractions must be monotone: %+v", a)
	}
	if a.OneStepShare < 0.7 {
		t.Errorf("one-step share = %v, want dominant", a.OneStepShare)
	}
	if a.AtMostTwoStepsShare < 0.9 {
		t.Errorf("≤2-step share = %v, want ≈0.98", a.AtMostTwoStepsShare)
	}
	if a.AtMostTwoStepsShare < a.OneStepShare {
		t.Error("≤2-step share cannot be below the 1-step share")
	}
	// The histogram uses the paper's buckets and conserves tenants.
	total := 0
	for _, b := range a.ChangesPerDayHist {
		total += b.Count
	}
	if total != 400 {
		t.Errorf("histogram lost tenants: %d", total)
	}
	// The CDF is monotone and ends at 1.
	last := 0.0
	for _, p := range a.IEICDF {
		if p.Fraction < last {
			t.Fatalf("CDF not monotone at %v", p)
		}
		last = p.Fraction
	}
	if last != 1 {
		t.Errorf("CDF should end at 1, got %v", last)
	}
}

func TestAnalyzeEmptyFleet(t *testing.T) {
	a := Analyze(nil, cat)
	if a.TotalChanges != 0 || a.OneStepShare != 0 {
		t.Errorf("empty fleet analysis should be zero: %+v", a)
	}
}

func TestWaitSamplesAndFigure4Shape(t *testing.T) {
	samples, err := CollectWaitSamples(120, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	// Figure 4: utilization and waits correlate positively but weakly — an
	// increasing trend with a wide band.
	rho, err := Correlation(samples, resource.CPU)
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.2 || rho > 0.98 {
		t.Errorf("CPU wait-utilization correlation = %v, want positive but imperfect", rho)
	}
	// The paper's two counterexample populations must both exist: high
	// utilization with small waits, and (some) low utilization with
	// nontrivial waits.
	var highUtilLowWait, lowUtilSomeWait int
	for _, s := range samples {
		if s.Kind != resource.CPU {
			continue
		}
		if s.Utilization > 0.7 && s.WaitMs < 10_000 {
			highUtilLowWait++
		}
		if s.Utilization < 0.3 && s.WaitMs > 1_000 {
			lowUtilSomeWait++
		}
	}
	if highUtilLowWait == 0 {
		t.Error("expected high-utilization/low-wait samples (utilization is not demand)")
	}
	if lowUtilSomeWait == 0 {
		t.Error("expected low-utilization samples with nontrivial waits")
	}
}

func TestFigure6SeparationAndCalibration(t *testing.T) {
	samples, err := CollectWaitSamples(150, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []resource.Kind{resource.CPU, resource.DiskIO} {
		d := SplitByUtilization(samples, k)
		if len(d.LowUtilWaitMs) < 30 || len(d.HighUtilWaitMs) < 30 {
			t.Fatalf("%v: not enough samples per side (%d low, %d high)", k, len(d.LowUtilWaitMs), len(d.HighUtilWaitMs))
		}
		// Figure 6's key property: clear separation between the wait
		// distributions at low and high utilization.
		if sep := d.Separation(); sep < 2 {
			t.Errorf("%v: separation = %v, want the high-utilization waits well above", k, sep)
		}
		// Percentage waits also separate (Figure 6(c) vs 6(d)).
		lowPct := stats.Median(d.LowUtilWaitPct)
		highPct := stats.Median(d.HighUtilWaitPct)
		if highPct <= lowPct {
			t.Errorf("%v: %%-wait medians do not separate: low %v high %v", k, lowPct, highPct)
		}
	}

	th := Calibrate(samples)
	if err := th.Validate(); err != nil {
		t.Fatalf("calibrated thresholds invalid: %v", err)
	}
	for _, k := range []resource.Kind{resource.CPU, resource.DiskIO} {
		if th.WaitLowMs[k] >= th.WaitHighMs[k] {
			t.Errorf("%v: calibrated low %v not below high %v", k, th.WaitLowMs[k], th.WaitHighMs[k])
		}
	}
}

func TestCalibrateKeepsDefaultsWithoutSamples(t *testing.T) {
	th := Calibrate(nil)
	def := Calibrate([]WaitSample{})
	if th != def {
		t.Error("calibration without samples should be deterministic")
	}
	if err := th.Validate(); err != nil {
		t.Errorf("default calibration invalid: %v", err)
	}
}

func TestArchetypeBreakdown(t *testing.T) {
	f := GenerateFleet(300, 5, 13)
	br := ArchetypeBreakdown(f, cat)
	if len(br) < 4 {
		t.Fatalf("breakdown covers %d archetypes", len(br))
	}
	for a, v := range br {
		if v < 0 {
			t.Errorf("%v: negative changes/day %v", a, v)
		}
	}
	// Spiky tenants must churn clearly more than steady ones. (Steady
	// tenants still flap when their level sits near a container boundary —
	// the phenomenon hysteresis exists for — so the gap is bounded.)
	if br[Spiky] < 1.5*br[Steady] {
		t.Errorf("spiky (%v) should clearly exceed steady (%v)", br[Spiky], br[Steady])
	}
	if got := ArchetypeBreakdown(nil, cat); len(got) != 0 {
		t.Errorf("empty fleet breakdown = %v", got)
	}
}

func TestParallelFleetBitIdentical(t *testing.T) {
	// Worker count must never change what the fleet paths produce: tenant
	// RNGs are derived per index (exec.SplitSeed) and analysis aggregation
	// is serial in index order.
	ctx := context.Background()
	serialFleet, err := GenerateFleetContext(ctx, 30, 2, 42, exec.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parFleet, err := GenerateFleetContext(ctx, 30, 2, 42, exec.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialFleet, parFleet) {
		t.Fatal("parallel fleet generation differs from serial")
	}
	serialA, err := AnalyzeContext(ctx, serialFleet, cat, exec.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parA, err := AnalyzeContext(ctx, serialFleet, cat, exec.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialA, parA) {
		t.Error("parallel analysis differs from serial")
	}
	if !reflect.DeepEqual(serialA, Analyze(serialFleet, cat)) {
		t.Error("Analyze wrapper differs from AnalyzeContext")
	}
}

func TestFleetContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GenerateFleetContext(ctx, 10, 1, 1, exec.Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("GenerateFleetContext: err = %v, want context.Canceled", err)
	}
	f := GenerateFleet(4, 1, 1)
	if _, err := AnalyzeContext(ctx, f, cat, exec.Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("AnalyzeContext: err = %v, want context.Canceled", err)
	}
}
