package fleet

import (
	"encoding/binary"
	"fmt"
	"math"

	"daasscale/internal/estimator"
	"daasscale/internal/resource"
	"daasscale/internal/stats"
)

// corrReservoirCap bounds the number of (utilization, wait) pairs retained
// per resource for Spearman correlation. Rank correlation is not sketchable
// — it needs joint observations — so the digest keeps a deterministic
// prefix of the sample stream: the first corrReservoirCap pairs in global
// config order. Because shards merge in config order, the retained prefix
// is identical for any shard size and worker count.
const corrReservoirCap = 4096

// WaitDigest is the streaming, mergeable replacement for the
// WaitSample-slice pipeline (SplitByUtilization → Separation/Correlation →
// Calibrate): one digest per resource kind accumulates the Figure 6
// low/high-utilization wait distributions as quantile sketches, plus a
// bounded reservoir for Figure 4's rank correlation, in O(bins) memory
// regardless of how many intervals were observed.
type WaitDigest struct {
	kind  resource.Kind
	alpha float64

	lowMs   *stats.Sketch // wait magnitude at utilization < 0.30
	highMs  *stats.Sketch // wait magnitude at utilization > 0.70
	lowPct  *stats.Sketch
	highPct *stats.Sketch

	corrUtil []float64
	corrWait []float64
	corrSeen uint64 // pairs observed, including those past the reservoir
}

// NewWaitDigest builds an empty digest for one resource kind with sketch
// accuracy alpha (non-positive selects stats.DefaultSketchAccuracy).
func NewWaitDigest(k resource.Kind, alpha float64) *WaitDigest {
	s := stats.NewSketch(alpha)
	return &WaitDigest{
		kind:    k,
		alpha:   s.Accuracy(),
		lowMs:   s,
		highMs:  stats.NewSketch(alpha),
		lowPct:  stats.NewSketch(alpha),
		highPct: stats.NewSketch(alpha),
	}
}

// Kind returns the resource the digest describes.
func (d *WaitDigest) Kind() resource.Kind { return d.kind }

// LowCount / HighCount return the number of observations in the low-/high-
// utilization band (the paper's <30% / >70% split).
func (d *WaitDigest) LowCount() int  { return int(d.lowMs.Count()) }
func (d *WaitDigest) HighCount() int { return int(d.highMs.Count()) }

// LowMs / HighMs / LowPct / HighPct expose the band sketches for quantile
// queries and report tables.
func (d *WaitDigest) LowMs() *stats.Sketch   { return d.lowMs }
func (d *WaitDigest) HighMs() *stats.Sketch  { return d.highMs }
func (d *WaitDigest) LowPct() *stats.Sketch  { return d.lowPct }
func (d *WaitDigest) HighPct() *stats.Sketch { return d.highPct }

// Observe folds one (utilization, wait) interval observation into the
// digest. Mid-band utilization (30%–70%) contributes to the correlation
// reservoir but to neither wait distribution, matching SplitByUtilization.
func (d *WaitDigest) Observe(utilization, waitMs, waitPct float64) {
	switch {
	case utilization < 0.30:
		d.lowMs.Add(waitMs)
		d.lowPct.Add(waitPct)
	case utilization > 0.70:
		d.highMs.Add(waitMs)
		d.highPct.Add(waitPct)
	}
	if len(d.corrUtil) < corrReservoirCap {
		d.corrUtil = append(d.corrUtil, utilization)
		d.corrWait = append(d.corrWait, waitMs)
	}
	d.corrSeen++
}

// ObserveSample folds a WaitSample of the digest's kind; samples for other
// kinds are ignored, so a mixed stream can be fanned to several digests.
func (d *WaitDigest) ObserveSample(s WaitSample) {
	if s.Kind == d.kind {
		d.Observe(s.Utilization, s.WaitMs, s.WaitPct)
	}
}

// Merge folds o into d. Sketch merges are exact; the correlation reservoir
// appends o's pairs in order until the cap, so merging shard digests in
// shard order retains exactly the first corrReservoirCap pairs of the
// global stream — bit-identical for any sharding.
func (d *WaitDigest) Merge(o *WaitDigest) error {
	if o == nil {
		return nil
	}
	if o.kind != d.kind {
		return fmt.Errorf("fleet: cannot merge %v wait digest into %v", o.kind, d.kind)
	}
	if err := d.lowMs.Merge(o.lowMs); err != nil {
		return err
	}
	if err := d.highMs.Merge(o.highMs); err != nil {
		return err
	}
	if err := d.lowPct.Merge(o.lowPct); err != nil {
		return err
	}
	if err := d.highPct.Merge(o.highPct); err != nil {
		return err
	}
	for i := range o.corrUtil {
		if len(d.corrUtil) >= corrReservoirCap {
			break
		}
		d.corrUtil = append(d.corrUtil, o.corrUtil[i])
		d.corrWait = append(d.corrWait, o.corrWait[i])
	}
	d.corrSeen += o.corrSeen
	return nil
}

// Separation is the streaming form of WaitDistributions.Separation: the
// ratio of the high-utilization distribution's 75th percentile to the
// low-utilization distribution's 90th percentile, denominator floored at
// one second per interval.
func (d *WaitDigest) Separation() float64 {
	lo := d.lowMs.Quantile(0.90)
	hi := d.highMs.Quantile(0.75)
	if !(lo >= 1000) { // also catches NaN from an empty sketch
		lo = 1000
	}
	return hi / lo
}

// Correlation is the streaming form of the package-level Correlation:
// Spearman's ρ between utilization and wait magnitude over the retained
// reservoir (the first corrReservoirCap observations).
func (d *WaitDigest) Correlation() (float64, error) {
	var sc stats.SpearmanScratch
	return stats.SpearmanBuf(d.corrUtil, d.corrWait, &sc)
}

// Calibrate derives the Section 4.1 threshold pair from the digest: the
// LOW threshold from the low-utilization distribution's 90th percentile,
// the HIGH threshold from the high-utilization distribution's 10th
// percentile, both clamped to the operating range used by the exact
// Calibrate. ok is false when either band has fewer than 30 observations;
// callers should then keep defaults. Each quantile is within the sketch's
// relative accuracy of the exact sample quantile, so the thresholds are
// within that bound of Calibrate's (before clamping, which only shrinks
// the gap).
func (d *WaitDigest) Calibrate() (low, high float64, ok bool) {
	if d.LowCount() < 30 || d.HighCount() < 30 {
		return 0, 0, false
	}
	low = stats.Clamp(d.lowMs.Quantile(0.90), 2_000, 50_000)
	high = stats.Clamp(d.highMs.Quantile(0.10), 2*low, 200_000)
	return low, high, true
}

// CalibrateDigests assembles estimator thresholds from per-kind digests,
// the streaming counterpart of Calibrate([]WaitSample). Kinds without a
// digest — or without enough observations — keep the defaults.
func CalibrateDigests(digests []*WaitDigest) estimator.Thresholds {
	th := estimator.DefaultThresholds()
	for _, d := range digests {
		if d == nil {
			continue
		}
		if low, high, ok := d.Calibrate(); ok {
			th.WaitLowMs[d.kind] = low
			th.WaitHighMs[d.kind] = high
		}
	}
	return th
}

// --- serialization ---------------------------------------------------------

const waitDigestMagic = uint32(0x46574431) // "FWD1"

// MarshalBinary encodes the digest deterministically for checkpoint files.
func (d *WaitDigest) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 256)
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	u32(waitDigestMagic)
	u32(uint32(d.kind))
	u64(d.corrSeen)
	u32(uint32(len(d.corrUtil)))
	for i := range d.corrUtil {
		u64(math.Float64bits(d.corrUtil[i]))
		u64(math.Float64bits(d.corrWait[i]))
	}
	for _, s := range []*stats.Sketch{d.lowMs, d.highMs, d.lowPct, d.highPct} {
		sk, err := s.MarshalBinary()
		if err != nil {
			return nil, err
		}
		u32(uint32(len(sk)))
		buf = append(buf, sk...)
	}
	return buf, nil
}

// UnmarshalBinary decodes a digest encoded by MarshalBinary, replacing d's
// state entirely.
func (d *WaitDigest) UnmarshalBinary(data []byte) error {
	r := aggReader{buf: data}
	if magic := r.u32(); magic != waitDigestMagic {
		return fmt.Errorf("fleet: bad wait-digest encoding magic %#x", magic)
	}
	kind := resource.Kind(r.u32())
	corrSeen := uint64(r.i64())
	nCorr := int(r.u32())
	if r.err == nil && nCorr > corrReservoirCap {
		return fmt.Errorf("fleet: wait digest reservoir holds %d pairs, cap %d", nCorr, corrReservoirCap)
	}
	var util, wait []float64
	if r.err == nil && nCorr > 0 {
		util = make([]float64, nCorr)
		wait = make([]float64, nCorr)
		for i := 0; i < nCorr; i++ {
			util[i] = math.Float64frombits(uint64(r.i64()))
			wait[i] = math.Float64frombits(uint64(r.i64()))
		}
	}
	sketches := make([]*stats.Sketch, 4)
	for i := range sketches {
		n := int(r.u32())
		raw := r.take(n)
		if r.err != nil {
			break
		}
		s := new(stats.Sketch)
		if err := s.UnmarshalBinary(raw); err != nil {
			return err
		}
		sketches[i] = s
	}
	if r.err != nil {
		return fmt.Errorf("fleet: truncated wait-digest encoding: %w", r.err)
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("fleet: %d trailing bytes after wait digest", len(r.buf)-r.off)
	}
	*d = WaitDigest{
		kind:     kind,
		alpha:    sketches[0].Accuracy(),
		lowMs:    sketches[0],
		highMs:   sketches[1],
		lowPct:   sketches[2],
		highPct:  sketches[3],
		corrUtil: util,
		corrWait: wait,
		corrSeen: corrSeen,
	}
	return nil
}
