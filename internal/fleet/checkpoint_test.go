package fleet

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"daasscale/internal/diskfaults"
	"daasscale/internal/fsio"
)

// TestStreamKillAndResume is the checkpoint acceptance criterion: a run
// killed mid-flight and resumed from its checkpoint produces an aggregate
// byte-identical to an uninterrupted run.
func TestStreamKillAndResume(t *testing.T) {
	const tenants, days, seed, shard = 240, 1, 1234, 32
	ckpt := filepath.Join(t.TempDir(), "fleet.ckpt")

	uninterrupted, err := Stream(context.Background(),
		mustFleetSpec(t, tenants, days, seed, WithShardSize(shard)), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantRaw, err := uninterrupted.Aggregate.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// First attempt: die after the fourth shard (the visitor stands in for
	// a kill). Checkpoints are written every 2 shards, so shards 0–3 are on
	// disk.
	killed := errors.New("simulated kill")
	spec := mustFleetSpec(t, tenants, days, seed,
		WithShardSize(shard), WithCheckpoint(ckpt), WithCheckpointEvery(2))
	_, err = Stream(context.Background(), spec, func(sr ShardResult) error {
		if sr.Index == 4 {
			return killed
		}
		return nil
	})
	if !errors.Is(err, killed) {
		t.Fatalf("first run: err = %v", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint written before the kill: %v", err)
	}

	// Second attempt with the same spec resumes and completes.
	res, err := Stream(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedShards == 0 {
		t.Error("resume did not skip any shards")
	}
	gotRaw, err := res.Aggregate.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(gotRaw) != string(wantRaw) {
		t.Error("resumed aggregate differs from uninterrupted run")
	}
	if !reflect.DeepEqual(res.Analysis, uninterrupted.Analysis) {
		t.Error("resumed Analysis differs from uninterrupted run")
	}

	// A third run resumes from the final checkpoint: everything is already
	// done, and the result is still identical.
	res3, err := Stream(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res3.ResumedShards != res3.Shards {
		t.Errorf("third run resumed %d of %d shards", res3.ResumedShards, res3.Shards)
	}
	raw3, err := res3.Aggregate.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(raw3) != string(wantRaw) {
		t.Error("fully-resumed aggregate differs")
	}
}

// TestCheckpointCrashDurable runs the kill-and-resume cycle on the
// crash-simulating filesystem via WithCheckpointFS, with a simulated
// power loss between the kill and the resume: because checkpoint writes
// fsync before the rename and fsync the directory after, the crash image
// must hold a complete checkpoint, and the resumed aggregate must be
// byte-identical to an uninterrupted run.
func TestCheckpointCrashDurable(t *testing.T) {
	const tenants, days, seed, shard = 240, 1, 1234, 32
	mem := diskfaults.NewMemFS()
	if err := mem.MkdirAll("/ck", 0o755); err != nil {
		t.Fatal(err)
	}
	const ckpt = "/ck/fleet.ckpt"

	uninterrupted, err := Stream(context.Background(),
		mustFleetSpec(t, tenants, days, seed, WithShardSize(shard)), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantRaw, err := uninterrupted.Aggregate.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	killed := errors.New("simulated kill")
	spec := mustFleetSpec(t, tenants, days, seed,
		WithShardSize(shard), WithCheckpoint(ckpt), WithCheckpointEvery(2),
		WithCheckpointFS(mem))
	_, err = Stream(context.Background(), spec, func(sr ShardResult) error {
		if sr.Index == 4 {
			return killed
		}
		return nil
	})
	if !errors.Is(err, killed) {
		t.Fatalf("first run: err = %v", err)
	}

	// Power loss: only fsync'd state survives.
	mem.Crash()

	res, err := Stream(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedShards == 0 {
		t.Error("resume after crash did not skip any shards")
	}
	gotRaw, err := res.Aggregate.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(gotRaw) != string(wantRaw) {
		t.Error("crash-resumed aggregate differs from uninterrupted run")
	}
}

// TestCheckpointFingerprintMismatch: resuming with a different spec must
// fail loudly instead of silently mixing two runs' statistics.
func TestCheckpointFingerprintMismatch(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "fleet.ckpt")
	if _, err := Stream(context.Background(),
		mustFleetSpec(t, 64, 1, 1, WithShardSize(32), WithCheckpoint(ckpt)), nil); err != nil {
		t.Fatal(err)
	}
	for name, spec := range map[string]FleetSpec{
		"seed":      mustFleetSpec(t, 64, 1, 2, WithShardSize(32), WithCheckpoint(ckpt)),
		"tenants":   mustFleetSpec(t, 65, 1, 1, WithShardSize(32), WithCheckpoint(ckpt)),
		"days":      mustFleetSpec(t, 64, 2, 1, WithShardSize(32), WithCheckpoint(ckpt)),
		"shardSize": mustFleetSpec(t, 64, 1, 1, WithShardSize(16), WithCheckpoint(ckpt)),
		"accuracy":  mustFleetSpec(t, 64, 1, 1, WithShardSize(32), WithAccuracy(0.05), WithCheckpoint(ckpt)),
	} {
		if _, err := Stream(context.Background(), spec, nil); err == nil {
			t.Errorf("%s mismatch: resume should fail", name)
		}
	}
}

// TestCheckpointGarbageFile: a file that is not a checkpoint errors rather
// than being treated as a fresh start (it might be the user's data).
func TestCheckpointGarbageFile(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "not-a-checkpoint")
	if err := os.WriteFile(ckpt, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Stream(context.Background(),
		mustFleetSpec(t, 64, 1, 1, WithShardSize(32), WithCheckpoint(ckpt)), nil); err == nil {
		t.Error("garbage checkpoint file should error")
	}
}

// TestCalibrationKillAndResume mirrors the fleet kill/resume test for the
// calibration pipeline.
func TestCalibrationKillAndResume(t *testing.T) {
	const configs, intervals, seed = 8, 2, 55
	ckpt := filepath.Join(t.TempDir(), "cal.ckpt")
	mustSpec := func(opts ...FleetOption) CalibrationSpec {
		spec, err := NewCalibrationSpec(configs, intervals, seed, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return spec
	}

	base, err := StreamCalibration(context.Background(), mustSpec(WithShardSize(2)), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantRaw, err := encodeCalibrationDigests(base.Digests)
	if err != nil {
		t.Fatal(err)
	}

	killed := errors.New("simulated kill")
	spec := mustSpec(WithShardSize(2), WithCheckpoint(ckpt), WithCheckpointEvery(1))
	if _, err := StreamCalibration(context.Background(), spec, func(cs CalibrationShard) error {
		if cs.Index == 2 {
			return killed
		}
		return nil
	}); !errors.Is(err, killed) {
		t.Fatalf("first run: err = %v", err)
	}

	res, err := StreamCalibration(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedShards == 0 {
		t.Error("resume did not skip any shards")
	}
	gotRaw, err := encodeCalibrationDigests(res.Digests)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotRaw) != string(wantRaw) {
		t.Error("resumed calibration digests differ from uninterrupted run")
	}
	if !reflect.DeepEqual(res.Thresholds, base.Thresholds) {
		t.Error("resumed thresholds differ")
	}
}

// TestWaitDigestBinaryRoundTrip checks digest serialization is exact and
// rejects corruption.
func TestWaitDigestBinaryRoundTrip(t *testing.T) {
	res, err := StreamCalibration(context.Background(), func() CalibrationSpec {
		s, err := NewCalibrationSpec(4, 2, 9, WithShardSize(2))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Digests {
		raw, err := d.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		back := new(WaitDigest)
		if err := back.UnmarshalBinary(raw); err != nil {
			t.Fatal(err)
		}
		raw2, err := back.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != string(raw2) {
			t.Errorf("kind %v: digest round trip is not byte-identical", d.Kind())
		}
		if back.Kind() != d.Kind() || back.LowCount() != d.LowCount() || back.HighCount() != d.HighCount() {
			t.Errorf("kind %v: round-tripped digest lost state", d.Kind())
		}
		if err := back.UnmarshalBinary(raw[:len(raw)-2]); err == nil {
			t.Error("truncated digest should not decode")
		}
	}
}

// TestCheckpointTornFileDetected is the crash-durability test for the
// checkpoint format: a checkpoint truncated at any byte boundary — the
// torn state a power loss could have left before writeCheckpoint grew its
// fsync-before-rename discipline — must be detected as corrupt (or, for
// cuts inside the payload, surface as a payload decode error upstream),
// never silently resumed from.
func TestCheckpointTornFileDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	fp := fingerprintFor("fleet", 64, 1, 1, 32, 0.01)
	payload := []byte("aggregate-payload-bytes")
	if err := writeCheckpoint(fsio.OS, path, fp, 3, payload); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	headerLen := len(whole) - len(payload)
	for cut := 0; cut < headerLen; cut++ {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := readCheckpoint(fsio.OS, path, fp); err == nil {
			t.Fatalf("cut at byte %d: torn checkpoint header read back without error", cut)
		}
	}
	// A cut inside the payload leaves a structurally valid checkpoint with
	// a short payload; the payload decoders own that detection. Assert the
	// fingerprint/shard framing still reads exactly and returns the
	// truncated payload verbatim, so decoders see the torn bytes.
	cut := headerLen + len(payload)/2
	if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	next, got, ok, err := readCheckpoint(fsio.OS, path, fp)
	if err != nil || !ok || next != 3 {
		t.Fatalf("payload cut: next=%d ok=%v err=%v, want 3 true nil", next, ok, err)
	}
	if string(got) != string(payload[:len(payload)/2]) {
		t.Fatalf("payload cut: got %q", got)
	}
	// And the full file still round-trips.
	if err := os.WriteFile(path, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	next, got, ok, err = readCheckpoint(fsio.OS, path, fp)
	if err != nil || !ok || next != 3 || string(got) != string(payload) {
		t.Fatalf("full file: next=%d ok=%v err=%v payload=%q", next, ok, err, got)
	}
}
