package fleet

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"daasscale/internal/estimator"
	"daasscale/internal/resource"
)

func TestThresholdDriftStable(t *testing.T) {
	th := estimator.DefaultThresholds()
	drifts := ThresholdDrift(th, th)
	if len(drifts) != resource.NumKinds {
		t.Fatalf("drifts = %d", len(drifts))
	}
	for _, d := range drifts {
		if d.RelChange != 0 || d.Significant(0.01) {
			t.Errorf("%v: identical calibrations should have zero drift: %+v", d.Kind, d)
		}
	}
}

func TestThresholdDriftDetectsChange(t *testing.T) {
	active := estimator.DefaultThresholds()
	fresh := active
	fresh.WaitHighMs[resource.CPU] = active.WaitHighMs[resource.CPU] * 2
	drifts := ThresholdDrift(active, fresh)
	var cpu Drift
	for _, d := range drifts {
		if d.Kind == resource.CPU {
			cpu = d
		}
	}
	if math.Abs(cpu.RelChange-1.0) > 1e-9 {
		t.Errorf("cpu drift = %v, want 1.0", cpu.RelChange)
	}
	if !cpu.Significant(0.25) || cpu.Significant(1.5) {
		t.Errorf("significance thresholds wrong: %+v", cpu)
	}
	// Zero→nonzero drift is infinite (always significant).
	zero := active
	zero.WaitLowMs[resource.DiskIO] = 0
	inf := ThresholdDrift(zero, active)
	for _, d := range inf {
		if d.Kind == resource.DiskIO && !d.Significant(1e9) {
			t.Error("zero→nonzero drift should always alert")
		}
	}
}

func TestWriteDriftReport(t *testing.T) {
	active := estimator.DefaultThresholds()
	fresh := active
	fresh.WaitHighMs[resource.CPU] *= 3
	var buf bytes.Buffer
	WriteDriftReport(&buf, ThresholdDrift(active, fresh), 0.25)
	out := buf.String()
	if !strings.Contains(out, "ALERT") {
		t.Errorf("report missing alert:\n%s", out)
	}
	if strings.Count(out, "ALERT") != 1 {
		t.Errorf("exactly one resource should alert:\n%s", out)
	}
}

func TestCalibrationPersistRoundTrip(t *testing.T) {
	samples, err := CollectWaitSamples(80, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	th := Calibrate(samples)
	var buf bytes.Buffer
	if err := th.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := estimator.ReadThresholdsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != th {
		t.Errorf("round trip mismatch:\n%+v\n%+v", got, th)
	}
}

func TestReadThresholdsJSONErrors(t *testing.T) {
	if _, err := estimator.ReadThresholdsJSON(strings.NewReader("{")); err == nil {
		t.Error("bad JSON should fail")
	}
	if _, err := estimator.ReadThresholdsJSON(strings.NewReader(`{"util_low":0.3}`)); err == nil {
		t.Error("missing wait maps should fail")
	}
	// Valid JSON, invalid thresholds.
	bad := `{"util_low":0.9,"util_high":0.7,
		"wait_low_ms":{"cpu":1,"memory":1,"diskio":1,"logio":1},
		"wait_high_ms":{"cpu":2,"memory":2,"diskio":2,"logio":2},
		"wait_pct_significant":0.3,"corr_significant":0.6,
		"extreme_util":0.95,"extreme_wait_factor":3}`
	if _, err := estimator.ReadThresholdsJSON(strings.NewReader(bad)); err == nil {
		t.Error("invalid thresholds should fail validation")
	}
}
