package fsio

import (
	"io"
	"os"
)

// File is the slice of *os.File the durability stack needs: sequential
// and positioned I/O, metadata, and — the load-bearing part — Sync. Every
// on-disk artifact (ledger segments, checkpoints, atomic replaces) is
// written through this interface so a test can substitute a
// fault-injecting or crash-simulating implementation for the real disk.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	// Name returns the path the file was opened under.
	Name() string
	// Stat returns the file's metadata (the writers only use Size).
	Stat() (os.FileInfo, error)
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	// Truncate cuts the file to size bytes.
	Truncate(size int64) error
	// Chmod sets the file's permission bits.
	Chmod(mode os.FileMode) error
	// Close releases the handle. It does not imply Sync.
	Close() error
}

// FS is the filesystem seam the durability stack runs on. The production
// implementation is OS (the real disk); internal/diskfaults provides a
// deterministic fault-injecting wrapper and a crash-simulating in-memory
// implementation for the crash-consistency harness. The interface is
// deliberately the minimal surface the ledger, the fleet checkpoints, and
// the serving daemon actually touch.
type FS interface {
	// OpenFile opens name with the given flag and (for creation) perm.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a new temp file in dir, os.CreateTemp-style: the
	// last "*" in pattern is replaced with a unique suffix.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically renames oldpath to newpath. Durability of the
	// rename itself requires a SyncDir of the parent directory.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists dir in name order.
	ReadDir(name string) ([]os.DirEntry, error)
	// MkdirAll creates dir and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs a directory, persisting renames and creates against
	// power loss (with the EINVAL/ENOTSUP tolerance SyncDir documents).
	SyncDir(dir string) error
}

// OS is the real filesystem: every method is the corresponding os.*
// call. This is the default (and the only implementation production code
// should select); everything else exists for fault injection.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) SyncDir(dir string) error { return SyncDir(dir) }
