// Package fsio holds the crash-durable file-write primitives shared by
// every on-disk artifact of the system: fleet checkpoints and the decision
// ledger. The contract they need is the same one databases need from their
// log device — after a power loss, a reader finds either the old bytes or
// the new bytes, never a torn mixture — and getting it requires more than
// write+rename: the data must be fsync'd before the rename (or the rename
// can land pointing at a zero-length or partial file), and the directory
// must be fsync'd after it (or the rename itself can be lost).
//
// All primitives are written against the FS seam so the crash-consistency
// harness (internal/diskfaults) can fail any write, sync, create, or
// rename deterministically and simulate power loss; production code uses
// the OS implementation.
package fsio

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// WriteFileAtomic atomically replaces path with data on the real
// filesystem. See WriteFileAtomicFS.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return WriteFileAtomicFS(OS, path, data, perm)
}

// WriteFileAtomicFS atomically replaces path with data. The write goes to
// a temp file in the same directory, the temp file is fsync'd *before* the
// rename (so the rename can never install unsynced — possibly empty or
// partial — contents), and the directory is fsync'd after it (so the
// rename itself survives a crash). A kill at any point leaves either the
// old file or the complete new one.
//
// Before writing, stale temp files a previous crash left behind for the
// same target (a kill between CreateTemp and the rename orphans the temp)
// are swept away, so repeated crash-and-retry cycles cannot accumulate
// debris. Concurrent atomic writers to the same target path were never
// supported (last rename wins); the sweep does not change that.
func WriteFileAtomicFS(fsys FS, path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	base := filepath.Base(path)
	sweepStaleTemps(fsys, dir, base)
	tmp, err := fsys.CreateTemp(dir, base+tempPattern)
	if err != nil {
		return fmt.Errorf("fsio: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		fsys.Remove(tmpName)
		return fmt.Errorf("fsio: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail(err)
	}
	// The fsync before the rename is the load-bearing step: without it the
	// filesystem may persist the rename before the data, and a crash then
	// exposes a truncated file under the final name.
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("fsio: %w", err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("fsio: %w", err)
	}
	return fsys.SyncDir(dir)
}

// tempPattern is the CreateTemp suffix appended to the target's base name;
// the "*" becomes the unique part. A temp file's name therefore always
// starts with "<base>.tmp", which is what the stale sweep keys on.
const tempPattern = ".tmp*"

// sweepStaleTemps removes temp files earlier atomic writes of the same
// target left behind (a crash between CreateTemp and Rename orphans one).
// Best-effort: an unreadable directory or a vanished entry is ignored —
// the sweep exists to bound debris, not to gate the write.
func sweepStaleTemps(fsys FS, dir, base string) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return
	}
	prefix := base + ".tmp"
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), prefix) {
			fsys.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// SyncDir fsyncs a directory, persisting directory-level operations
// (renames, creates) against power loss. Filesystems that refuse to fsync
// directories (some network mounts) report success — the data fsync has
// already happened by the time callers get here, and refusing to sync a
// directory is the mount telling us it has no stronger primitive.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fsio: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !ignorableSyncError(err) {
		return fmt.Errorf("fsio: sync %s: %w", dir, err)
	}
	return nil
}
