// Package fsio holds the crash-durable file-write primitives shared by
// every on-disk artifact of the system: fleet checkpoints and the decision
// ledger. The contract they need is the same one databases need from their
// log device — after a power loss, a reader finds either the old bytes or
// the new bytes, never a torn mixture — and getting it requires more than
// write+rename: the data must be fsync'd before the rename (or the rename
// can land pointing at a zero-length or partial file), and the directory
// must be fsync'd after it (or the rename itself can be lost).
package fsio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic atomically replaces path with data. The write goes to a
// temp file in the same directory, the temp file is fsync'd *before* the
// rename (so the rename can never install unsynced — possibly empty or
// partial — contents), and the directory is fsync'd after it (so the
// rename itself survives a crash). A kill at any point leaves either the
// old file or the complete new one.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("fsio: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("fsio: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail(err)
	}
	// The fsync before the rename is the load-bearing step: without it the
	// filesystem may persist the rename before the data, and a crash then
	// exposes a truncated file under the final name.
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fsio: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fsio: %w", err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, persisting directory-level operations
// (renames, creates) against power loss. Filesystems that refuse to fsync
// directories (some network mounts) report success — the data fsync has
// already happened by the time callers get here, and refusing to sync a
// directory is the mount telling us it has no stronger primitive.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fsio: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !ignorableSyncError(err) {
		return fmt.Errorf("fsio: sync %s: %w", dir, err)
	}
	return nil
}
