package fsio

import (
	"errors"
	"syscall"
)

// ignorableSyncError reports whether a directory-fsync failure means "this
// filesystem has no such operation" rather than "your data is at risk".
// Network and FUSE mounts commonly return EINVAL or ENOTSUP for fsync on a
// directory handle; treating those as fatal would make checkpoints and
// ledgers unusable there while buying no durability.
func ignorableSyncError(err error) bool {
	return errors.Is(err, syscall.EINVAL) ||
		errors.Is(err, syscall.ENOTSUP) ||
		errors.Is(err, syscall.ENOTTY)
}
