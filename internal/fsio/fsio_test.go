package fsio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomicCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")

	if err := WriteFileAtomic(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("first")) {
		t.Fatalf("read %q, want %q", got, "first")
	}

	if err := WriteFileAtomic(path, []byte("second, longer contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("second, longer contents")) {
		t.Fatalf("read %q, want replacement", got)
	}
}

func TestWriteFileAtomicLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	for i := 0; i < 5; i++ {
		if err := WriteFileAtomic(path, []byte{byte(i)}, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "state.bin" {
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("directory holds %v, want only state.bin", names)
	}
}

func TestWriteFileAtomicSweepsOrphanedTemps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	// Orphans a crash between CreateTemp and Rename would leave behind.
	for _, orphan := range []string{"state.bin.tmp1234", "state.bin.tmp9999"} {
		if err := os.WriteFile(filepath.Join(dir, orphan), []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Bystanders the sweep must not touch: another target's temp and a
	// file whose name merely resembles the target's.
	for _, keep := range []string{"other.bin.tmp42", "state.bin.bak"} {
		if err := os.WriteFile(filepath.Join(dir, keep), []byte("keep"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	if err := WriteFileAtomic(path, []byte("fresh"), 0o644); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	want := []string{"other.bin.tmp42", "state.bin", "state.bin.bak"}
	if len(names) != len(want) {
		t.Fatalf("directory holds %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("directory holds %v, want %v", names, want)
		}
	}
}

func TestWriteFileAtomicMissingDir(t *testing.T) {
	err := WriteFileAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("expected error writing into a missing directory")
	}
}

func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected error syncing a missing directory")
	}
}
