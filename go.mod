module daasscale

go 1.22
