package daasscale_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"daasscale/internal/fleet"
)

// BenchmarkFleetStream measures the streaming fleet pipeline at three fleet
// sizes. Each sub-benchmark reports tenants/sec plus the peak heap observed
// across the run (sampled at every shard boundary), demonstrating the
// memory contract: peak heap tracks the shard size, not the fleet size —
// the 100k run must not cost 100× the 1k run's memory. Headline numbers
// land in BENCH_fleet.json via `make bench-fleet`.
func BenchmarkFleetStream(b *testing.B) {
	for _, size := range []int{1_000, 10_000, 100_000} {
		size := size
		b.Run(fmt.Sprintf("tenants=%d", size), func(b *testing.B) {
			spec, err := fleet.NewFleetSpec(size, 1, benchSeed, fleet.WithShardSize(1024))
			if err != nil {
				b.Fatal(err)
			}
			var peakHeap uint64
			var ms runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms)
			baseline := ms.HeapAlloc
			mallocsBefore := ms.Mallocs
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := fleet.Stream(context.Background(), spec, func(sr fleet.ShardResult) error {
					runtime.ReadMemStats(&ms)
					if ms.HeapAlloc > peakHeap {
						peakHeap = ms.HeapAlloc
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Tenants != size {
					b.Fatalf("processed %d tenants, want %d", res.Tenants, size)
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&ms)
			elapsed := b.Elapsed().Seconds()
			tenantsPerSec := float64(size*b.N) / elapsed
			peakHeapMB := float64(peakHeap) / (1 << 20)
			allocsPerTenant := float64(ms.Mallocs-mallocsBefore) / float64(size*b.N)
			b.ReportMetric(tenantsPerSec, "tenants/s")
			b.ReportMetric(peakHeapMB, "peak-heap-MB")
			b.ReportMetric(allocsPerTenant, "allocs/tenant")
			recordBench(fmt.Sprintf("FleetStream%dk", size/1000), map[string]float64{
				"tenants":           float64(size),
				"days":              1,
				"shard_size":        1024,
				"tenants_per_sec":   tenantsPerSec,
				"peak_heap_mb":      peakHeapMB,
				"baseline_heap_mb":  float64(baseline) / (1 << 20),
				"allocs_per_tenant": allocsPerTenant,
			})
		})
	}
}

// BenchmarkFleetCalibrationStream measures the sharded wait-sampling
// pipeline that feeds threshold calibration.
func BenchmarkFleetCalibrationStream(b *testing.B) {
	spec, err := fleet.NewCalibrationSpec(60, 4, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fleet.StreamCalibration(context.Background(), spec, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	configsPerSec := float64(spec.Configs*b.N) / b.Elapsed().Seconds()
	b.ReportMetric(configsPerSec, "configs/s")
	recordBench("FleetCalibrationStream", map[string]float64{
		"configs":         float64(spec.Configs),
		"intervals_per":   float64(spec.IntervalsPer),
		"configs_per_sec": configsPerSec,
	})
}
